package tarutil

import (
	"bytes"
	"fmt"
	"math/rand"
	"path"
	"testing"

	"repro/internal/errno"
	"repro/internal/vfs"
)

// Property: across randomized mutation sequences, the incremental commit
// pipeline (Snapshotter.Advance) produces byte-identical packed layers to
// the full-walk reference pipeline (Snapshot + Diff), and applying those
// layers to a replica reproduces the source filesystem.

// mutator applies random create/write/append/chown/chmod/mkdir/symlink/
// link/setxattr/unlink/rmdir/rename operations, tracking live paths.
type mutator struct {
	rng   *rand.Rand
	fs    *vfs.FS
	rc    *vfs.AccessContext
	dirs  []string // always contains "/"
	files []string
	seq   int
}

func newMutator(seed int64, fs *vfs.FS) *mutator {
	return &mutator{rng: rand.New(rand.NewSource(seed)), fs: fs,
		rc: vfs.RootContext(), dirs: []string{"/"}}
}

func (m *mutator) pickDir() string  { return m.dirs[m.rng.Intn(len(m.dirs))] }
func (m *mutator) pickFile() string { return m.files[m.rng.Intn(len(m.files))] }

func (m *mutator) fresh(dir, prefix string) string {
	m.seq++
	return path.Join(dir, fmt.Sprintf("%s%d", prefix, m.seq))
}

func (m *mutator) dropPath(p string) {
	keep := func(paths []string) []string {
		out := paths[:0]
		for _, q := range paths {
			if q != p && !isUnder(q, p) {
				out = append(out, q)
			}
		}
		return out
	}
	m.files = keep(m.files)
	m.dirs = keep(m.dirs)
}

func isUnder(p, dir string) bool {
	return len(p) > len(dir) && p[:len(dir)] == dir && (dir == "/" || p[len(dir)] == '/')
}

func (m *mutator) step() {
	switch m.rng.Intn(14) {
	case 0, 1: // create a file
		p := m.fresh(m.pickDir(), "f")
		data := make([]byte, m.rng.Intn(64))
		m.rng.Read(data)
		if m.fs.WriteFile(m.rc, p, data, 0o644, m.rng.Intn(3), 0) == errno.OK {
			m.files = append(m.files, p)
		}
	case 2: // overwrite
		if len(m.files) == 0 {
			return
		}
		data := make([]byte, m.rng.Intn(64))
		m.rng.Read(data)
		m.fs.WriteFile(m.rc, m.pickFile(), data, 0o644, 0, 0)
	case 3: // append
		if len(m.files) == 0 {
			return
		}
		m.fs.AppendFile(m.rc, m.pickFile(), []byte("+"), 0o644, 0, 0)
	case 4: // chown
		if len(m.files) == 0 {
			return
		}
		m.fs.Chown(m.rc, m.pickFile(), m.rng.Intn(100), m.rng.Intn(100), false)
	case 5: // chmod a directory
		m.fs.Chmod(m.rc, m.pickDir(), 0o700+uint32(m.rng.Intn(0o100)), false)
	case 6: // mkdir
		p := m.fresh(m.pickDir(), "d")
		if m.fs.Mkdir(m.rc, p, 0o755, 0, 0) == errno.OK {
			m.dirs = append(m.dirs, p)
		}
	case 7: // symlink to a random file
		if len(m.files) == 0 {
			return
		}
		m.fs.Symlink(m.rc, m.pickFile(), m.fresh(m.pickDir(), "s"), 0, 0)
	case 8: // hard link
		if len(m.files) == 0 {
			return
		}
		p := m.fresh(m.pickDir(), "l")
		if m.fs.Link(m.rc, m.pickFile(), p) == errno.OK {
			m.files = append(m.files, p)
		}
	case 9: // set or change an xattr
		if len(m.files) == 0 {
			return
		}
		m.fs.SetXattr(m.rc, m.pickFile(), "user.k",
			[]byte{byte(m.rng.Intn(4))}, false)
	case 10: // unlink a file or remove a whole directory
		if m.rng.Intn(2) == 0 && len(m.files) > 0 {
			p := m.pickFile()
			if m.fs.Unlink(m.rc, p) == errno.OK {
				m.dropPath(p)
			}
			return
		}
		if len(m.dirs) > 1 {
			p := m.dirs[1+m.rng.Intn(len(m.dirs)-1)]
			removeAll(m.fs, p)
			if !m.fs.Exists(m.rc, p) {
				m.dropPath(p)
			}
		}
	case 11: // rename a file into a random directory
		if len(m.files) == 0 {
			return
		}
		from := m.pickFile()
		to := m.fresh(m.pickDir(), "r")
		if m.fs.Rename(m.rc, from, to) == errno.OK {
			m.dropPath(from)
			m.files = append(m.files, to)
		}
	case 12: // replace a whole directory with a file at the same path
		if len(m.dirs) <= 1 {
			return
		}
		p := m.dirs[1+m.rng.Intn(len(m.dirs)-1)]
		removeAll(m.fs, p)
		if m.fs.Exists(m.rc, p) {
			return
		}
		m.dropPath(p)
		if m.fs.WriteFile(m.rc, p, []byte("was a dir"), 0o644, 0, 0) == errno.OK {
			m.files = append(m.files, p)
		}
	case 13: // replace a file with a directory at the same path
		if len(m.files) == 0 {
			return
		}
		p := m.pickFile()
		if m.fs.Unlink(m.rc, p) != errno.OK {
			return
		}
		m.dropPath(p)
		if m.fs.Mkdir(m.rc, p, 0o755, 0, 0) == errno.OK {
			m.dirs = append(m.dirs, p)
		}
	}
}

func TestIncrementalMatchesFullWalkReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		fs := vfs.New()
		m := newMutator(seed, fs)
		// A starting population so early deletes have something to hit.
		for i := 0; i < 30; i++ {
			m.step()
		}

		snap, err := NewSnapshotter(fs)
		if err != nil {
			t.Fatal(err)
		}
		prevRef, err := Snapshot(fs)
		if err != nil {
			t.Fatal(err)
		}
		// A replica of the committed state that only ever sees the packed
		// layers the incremental pipeline emits.
		replica := vfs.New()
		full, err := Pack(prevRef)
		if err != nil {
			t.Fatal(err)
		}
		if err := Unpack(replica, full); err != nil {
			t.Fatal(err)
		}

		for batch := 0; batch < 10; batch++ {
			for i := 0; i < 8; i++ {
				m.step()
			}
			// Reference pipeline: full walk + full diff.
			cur, err := Snapshot(fs)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			refDiff := Diff(prevRef, cur)
			prevRef = cur
			refLayer, err := Pack(refDiff)
			if err != nil {
				t.Fatal(err)
			}
			// Incremental pipeline: dirty-subtree walk.
			incDiff, err := snap.Advance(fs)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			incLayer, err := Pack(incDiff)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refLayer, incLayer) {
				t.Fatalf("seed %d batch %d: layers differ\nref: %v\ninc: %v",
					seed, batch, paths(refDiff), paths(incDiff))
			}
			if err := Unpack(replica, incLayer); err != nil {
				t.Fatalf("seed %d batch %d: apply: %v", seed, batch, err)
			}
		}

		// The replica, built purely from incremental layers, matches the
		// source tree entry for entry (modulo mtimes, which unpacking
		// re-stamps).
		want, _ := Snapshot(fs)
		got, _ := Snapshot(replica)
		if len(want) != len(got) {
			t.Fatalf("seed %d: replica has %d entries, want %d\n%v\n%v",
				seed, len(got), len(want), paths(got), paths(want))
		}
		for i := range want {
			if want[i].Path != got[i].Path || !sameEntry(want[i], got[i]) {
				t.Fatalf("seed %d: replica diverges at %s vs %s",
					seed, got[i].Path, want[i].Path)
			}
		}

		// And the tracked state agrees with a fresh full walk.
		if snap.Len() != len(want) {
			t.Fatalf("seed %d: snapshotter tracks %d entries, want %d",
				seed, snap.Len(), len(want))
		}
	}
}

// TestApplyLayerKeepsStateConsistent drives the cached-replay path: a
// snapshotter that applies packed layers (rather than observing live
// mutations) stays byte-for-byte in sync with the filesystem.
func TestApplyLayerKeepsStateConsistent(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		src := vfs.New()
		m := newMutator(seed, src)
		for i := 0; i < 30; i++ {
			m.step()
		}
		srcSnap, err := NewSnapshotter(src)
		if err != nil {
			t.Fatal(err)
		}
		// The replica mirrors src's starting state and replays layers.
		replica := src.Clone()
		repSnap, err := NewSnapshotter(replica)
		if err != nil {
			t.Fatal(err)
		}

		for batch := 0; batch < 6; batch++ {
			for i := 0; i < 8; i++ {
				m.step()
			}
			layerEnts, err := srcSnap.Advance(src)
			if err != nil {
				t.Fatal(err)
			}
			layer, err := Pack(layerEnts)
			if err != nil {
				t.Fatal(err)
			}
			if err := repSnap.ApplyLayer(replica, layer); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			// The replay left no untracked changes behind.
			extra, err := repSnap.Advance(replica)
			if err != nil {
				t.Fatal(err)
			}
			if len(extra) != 0 {
				t.Fatalf("seed %d batch %d: replay left untracked diff %v",
					seed, batch, paths(extra))
			}
		}
		want, _ := Snapshot(src)
		got, _ := Snapshot(replica)
		if len(want) != len(got) {
			t.Fatalf("seed %d: replica %d entries, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if want[i].Path != got[i].Path || !sameEntry(want[i], got[i]) {
				t.Fatalf("seed %d: replica diverges at %s", seed, want[i].Path)
			}
		}
	}
}

// TestAdvanceDirReplacedByFile pins the trickiest reconciliation case: a
// directory subtree replaced by a regular file at the same path must emit
// the file entry plus whiteouts for the orphaned children, exactly as the
// full-walk reference does — and the layer must round-trip through Unpack.
func TestAdvanceDirReplacedByFile(t *testing.T) {
	rc := vfs.RootContext()
	fs := vfs.New()
	fs.MkdirAll(rc, "/d/sub", 0o755, 0, 0)
	fs.WriteFile(rc, "/d/f", []byte("x"), 0o644, 0, 0)
	fs.WriteFile(rc, "/d/sub/g", []byte("y"), 0o644, 0, 0)
	fs.WriteFile(rc, "/keep", []byte("z"), 0o644, 0, 0)

	snap, err := NewSnapshotter(fs)
	if err != nil {
		t.Fatal(err)
	}
	prev, _ := Snapshot(fs)
	replica := fs.Clone()

	removeAll(fs, "/d")
	if e := fs.WriteFile(rc, "/d", []byte("now a file"), 0o644, 0, 0); e != errno.OK {
		t.Fatal(e)
	}

	incDiff, err := snap.Advance(fs)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := Snapshot(fs)
	refDiff := Diff(prev, cur)
	incLayer, _ := Pack(incDiff)
	refLayer, _ := Pack(refDiff)
	if !bytes.Equal(incLayer, refLayer) {
		t.Fatalf("layers differ\nref: %v\ninc: %v", paths(refDiff), paths(incDiff))
	}
	if err := Unpack(replica, incLayer); err != nil {
		t.Fatal(err)
	}
	if data, e := replica.ReadFile(rc, "/d"); e != errno.OK || string(data) != "now a file" {
		t.Fatalf("replacement file: %q %v", data, e)
	}
	if replica.Exists(rc, "/d/sub/g") {
		t.Fatal("orphaned child survived")
	}
	// The tracked state stayed consistent: the next commit is clean.
	if extra, _ := snap.Advance(fs); len(extra) != 0 {
		t.Fatalf("state left dirty: %v", paths(extra))
	}
}

func paths(ents []Entry) []string {
	out := make([]string, len(ents))
	for i := range ents {
		out[i] = ents[i].Path
	}
	return out
}
