package bpf

import (
	"encoding/binary"
	"fmt"
)

// Marshal encodes the program in the wire layout of struct sock_filter[]
// with the given byte order. The kernel consumes native-endian programs;
// callers exporting to a cross-endian target (s390x filters generated on
// x86_64, say) pick the order explicitly, which is why there is no
// hidden-host-order variant.
func Marshal(p Program, order binary.ByteOrder) []byte {
	out := make([]byte, len(p)*InstructionSize)
	for i, ins := range p {
		off := i * InstructionSize
		order.PutUint16(out[off:], ins.Op)
		out[off+2] = ins.JT
		out[off+3] = ins.JF
		order.PutUint32(out[off+4:], ins.K)
	}
	return out
}

// Unmarshal decodes a struct sock_filter[] image produced by Marshal with
// the same byte order.
func Unmarshal(b []byte, order binary.ByteOrder) (Program, error) {
	if len(b)%InstructionSize != 0 {
		return nil, fmt.Errorf("bpf: unmarshal: length %d not a multiple of %d", len(b), InstructionSize)
	}
	p := make(Program, len(b)/InstructionSize)
	for i := range p {
		off := i * InstructionSize
		p[i] = Instruction{
			Op: order.Uint16(b[off:]),
			JT: b[off+2],
			JF: b[off+3],
			K:  order.Uint32(b[off+4:]),
		}
	}
	return p, nil
}

// Equal reports whether two programs are instruction-for-instruction
// identical. Used by the same-bytes tests: the program the sim kernel
// interprets must match the one the native path loads.
func Equal(a, b Program) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
