package bpf

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// retProg builds the minimal valid program: return k.
func retProg(k uint32) Program {
	return Program{Stmt(ClassRET|RetK, k)}
}

func TestValidateEmptyProgram(t *testing.T) {
	var p Program
	if err := p.Validate(); err == nil {
		t.Fatal("empty program must be rejected")
	}
}

func TestValidateTooLong(t *testing.T) {
	p := make(Program, MaxInstructions+1)
	for i := range p {
		p[i] = Stmt(ClassRET|RetK, 0)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("over-length program must be rejected")
	}
}

func TestValidateMinimal(t *testing.T) {
	if err := retProg(7).Validate(); err != nil {
		t.Fatalf("minimal return program rejected: %v", err)
	}
}

func TestValidateMustEndInReturn(t *testing.T) {
	p := Program{Stmt(ClassLD|SizeW|ModeIMM, 1)}
	if err := p.Validate(); err == nil {
		t.Fatal("program not ending in RET must be rejected")
	}
}

func TestValidateUnknownOpcode(t *testing.T) {
	p := Program{
		Instruction{Op: 0xffff},
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown opcode must be rejected")
	}
}

func TestValidateJumpOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"ja past end", Program{
			Stmt(ClassJMP|JmpJA, 5),
			Stmt(ClassRET|RetK, 0),
		}},
		{"jt past end", Program{
			Jump(ClassJMP|JmpJEQ|SrcK, 1, 9, 0),
			Stmt(ClassRET|RetK, 0),
		}},
		{"jf past end", Program{
			Jump(ClassJMP|JmpJEQ|SrcK, 1, 0, 9),
			Stmt(ClassRET|RetK, 0),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); err == nil {
				t.Fatalf("%s must be rejected", c.name)
			}
		})
	}
}

func TestValidateDivByConstZero(t *testing.T) {
	p := Program{
		Stmt(ClassALU|ALUDiv|SrcK, 0),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("constant division by zero must be rejected")
	}
	// Mod too.
	p[0] = Stmt(ClassALU|ALUMod|SrcK, 0)
	if err := p.Validate(); err == nil {
		t.Fatal("constant modulo by zero must be rejected")
	}
}

func TestValidateShiftRange(t *testing.T) {
	p := Program{
		Stmt(ClassALU|ALULsh|SrcK, 32),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("constant shift by 32 must be rejected")
	}
}

func TestValidateScratchBounds(t *testing.T) {
	p := Program{
		Stmt(ClassST, MemWords),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("scratch store out of range must be rejected")
	}
	p = Program{
		Stmt(ClassLD|SizeW|ModeMEM, MemWords),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("scratch load out of range must be rejected")
	}
}

func TestSeccompRejectsRetX(t *testing.T) {
	p := Program{Stmt(ClassRET|RetX, 0)}
	if err := p.Validate(); err != nil {
		t.Fatalf("classic validation should accept RET|X: %v", err)
	}
	if err := p.ValidateSeccomp(); err == nil {
		t.Fatal("seccomp validation must reject RET|X")
	}
}

func TestSeccompRejectsUnalignedLoad(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 2),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.ValidateSeccomp(); err == nil {
		t.Fatal("unaligned absolute load must be rejected for seccomp")
	}
}

func TestSeccompRejectsOutOfDataLoad(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, SeccompDataSize),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.ValidateSeccomp(); err == nil {
		t.Fatal("load beyond seccomp_data must be rejected")
	}
}

func TestSeccompRejectsSubWordLoad(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeB|ModeABS, 0),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.ValidateSeccomp(); err == nil {
		t.Fatal("byte-sized absolute load must be rejected for seccomp")
	}
}

func TestSeccompRejectsIndirectLoad(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeIND, 0),
		Stmt(ClassRET|RetK, 0),
	}
	if err := p.ValidateSeccomp(); err == nil {
		t.Fatal("indirect load must be rejected for seccomp")
	}
}

func TestSeccompAcceptsCanonicalFilterShape(t *testing.T) {
	// The canonical allow-or-fake shape: load nr, compare, return.
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 0),       // A = nr
		Jump(ClassJMP|JmpJEQ|SrcK, 92, 0, 1), // nr == chown ?
		Stmt(ClassRET|RetK, 0x00050000),      // ERRNO(0)
		Stmt(ClassRET|RetK, 0x7fff0000),      // ALLOW
	}
	if err := p.ValidateSeccomp(); err != nil {
		t.Fatalf("canonical filter rejected: %v", err)
	}
}

func runVM(t *testing.T, p Program, data []byte) uint32 {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	var vm VM
	got, err := vm.Run(p, data)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return got
}

func TestVMRetConstant(t *testing.T) {
	if got := runVM(t, retProg(0xdead), nil); got != 0xdead {
		t.Fatalf("got %#x, want 0xdead", got)
	}
}

func TestVMLoadAbsWordBigEndian(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 4),
		Stmt(ClassRET|RetA, 0),
	}
	data := []byte{0, 0, 0, 0, 0x12, 0x34, 0x56, 0x78}
	if got := runVM(t, p, data); got != 0x12345678 {
		t.Fatalf("got %#x, want 0x12345678", got)
	}
}

func TestVMLoadOutOfRangeReturnsZero(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 100),
		Stmt(ClassRET|RetK, 0xffffffff),
	}
	if got := runVM(t, p, make([]byte, 8)); got != 0 {
		t.Fatalf("out-of-range load must terminate with 0, got %#x", got)
	}
}

func TestVMALUOperations(t *testing.T) {
	cases := []struct {
		name string
		op   uint16
		a, k uint32
		want uint32
	}{
		{"add", ClassALU | ALUAdd | SrcK, 10, 3, 13},
		{"add wraps", ClassALU | ALUAdd | SrcK, 0xffffffff, 2, 1},
		{"sub", ClassALU | ALUSub | SrcK, 10, 3, 7},
		{"sub wraps", ClassALU | ALUSub | SrcK, 0, 1, 0xffffffff},
		{"mul", ClassALU | ALUMul | SrcK, 7, 6, 42},
		{"div", ClassALU | ALUDiv | SrcK, 42, 5, 8},
		{"mod", ClassALU | ALUMod | SrcK, 42, 5, 2},
		{"or", ClassALU | ALUOr | SrcK, 0xf0, 0x0f, 0xff},
		{"and", ClassALU | ALUAnd | SrcK, 0xff, 0x0f, 0x0f},
		{"xor", ClassALU | ALUXor | SrcK, 0xff, 0x0f, 0xf0},
		{"lsh", ClassALU | ALULsh | SrcK, 1, 4, 16},
		{"rsh", ClassALU | ALURsh | SrcK, 16, 4, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := Program{
				Stmt(ClassLD|SizeW|ModeIMM, c.a),
				Stmt(c.op, c.k),
				Stmt(ClassRET|RetA, 0),
			}
			if got := runVM(t, p, nil); got != c.want {
				t.Fatalf("%s: got %#x, want %#x", c.name, got, c.want)
			}
		})
	}
}

func TestVMNeg(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeIMM, 1),
		Stmt(ClassALU|ALUNeg, 0),
		Stmt(ClassRET|RetA, 0),
	}
	if got := runVM(t, p, nil); got != 0xffffffff {
		t.Fatalf("neg 1 = %#x, want 0xffffffff", got)
	}
}

func TestVMRuntimeDivByZeroViaX(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeIMM, 42),
		Stmt(ClassLDX|SizeW|ModeIMM, 0),
		Stmt(ClassALU|ALUDiv|SrcX, 0),
		Stmt(ClassRET|RetK, 0xff),
	}
	if got := runVM(t, p, nil); got != 0 {
		t.Fatalf("runtime div by zero must return 0, got %#x", got)
	}
}

func TestVMScratchMemory(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeIMM, 0x1111),
		Stmt(ClassST, 3),
		Stmt(ClassLD|SizeW|ModeIMM, 0),
		Stmt(ClassLD|SizeW|ModeMEM, 3),
		Stmt(ClassRET|RetA, 0),
	}
	if got := runVM(t, p, nil); got != 0x1111 {
		t.Fatalf("scratch roundtrip got %#x", got)
	}
}

func TestVMRegisterTransfers(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeIMM, 0x2222),
		Stmt(ClassMISC|MiscTAX, 0), // X = A
		Stmt(ClassLD|SizeW|ModeIMM, 0),
		Stmt(ClassMISC|MiscTXA, 0), // A = X
		Stmt(ClassRET|RetA, 0),
	}
	if got := runVM(t, p, nil); got != 0x2222 {
		t.Fatalf("tax/txa roundtrip got %#x", got)
	}
}

func TestVMConditionalJumps(t *testing.T) {
	// if A == 5 return 1 else return 2
	mk := func(op uint16, k uint32) Program {
		return Program{
			Stmt(ClassLD|SizeW|ModeIMM, 5),
			Jump(op, k, 0, 1),
			Stmt(ClassRET|RetK, 1),
			Stmt(ClassRET|RetK, 2),
		}
	}
	cases := []struct {
		name string
		op   uint16
		k    uint32
		want uint32
	}{
		{"jeq taken", ClassJMP | JmpJEQ | SrcK, 5, 1},
		{"jeq not taken", ClassJMP | JmpJEQ | SrcK, 6, 2},
		{"jgt taken", ClassJMP | JmpJGT | SrcK, 4, 1},
		{"jgt not taken", ClassJMP | JmpJGT | SrcK, 5, 2},
		{"jge taken", ClassJMP | JmpJGE | SrcK, 5, 1},
		{"jge not taken", ClassJMP | JmpJGE | SrcK, 6, 2},
		{"jset taken", ClassJMP | JmpJSET | SrcK, 4, 1},
		{"jset not taken", ClassJMP | JmpJSET | SrcK, 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runVM(t, mk(c.op, c.k), nil); got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestVMLen(t *testing.T) {
	p := Program{
		Stmt(ClassLD|SizeW|ModeLEN, 0),
		Stmt(ClassRET|RetA, 0),
	}
	if got := runVM(t, p, make([]byte, 64)); got != 64 {
		t.Fatalf("len got %d", got)
	}
}

func TestAssemblerForwardJumps(t *testing.T) {
	a := NewAssembler()
	a.LoadAbsW(0)
	a.JeqImm(42, "fake", "")
	a.Ret(1)
	a.Label("fake")
	a.Ret(2)
	p, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	data := make([]byte, SeccompDataSize)
	binary.BigEndian.PutUint32(data, 42)
	if got := runVM(t, p, data); got != 2 {
		t.Fatalf("taken branch got %d, want 2", got)
	}
	binary.BigEndian.PutUint32(data, 41)
	if got := runVM(t, p, data); got != 1 {
		t.Fatalf("fallthrough got %d, want 1", got)
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.JeqImm(1, "nowhere", "")
	a.Ret(0)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestAssemblerBackwardJump(t *testing.T) {
	a := NewAssembler()
	a.Label("top")
	a.Ret(0)
	a.Ja("top")
	a.Ret(0)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("backward jump must fail")
	}
}

func TestAssemblerDuplicateLabel(t *testing.T) {
	a := NewAssembler()
	a.Label("x")
	a.Ret(0)
	a.Label("x")
	a.Ret(0)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestAssemblerBranchSpanLimit(t *testing.T) {
	a := NewAssembler()
	a.JeqImm(1, "far", "")
	for i := 0; i < 300; i++ {
		a.LoadImm(uint32(i))
	}
	a.Label("far")
	a.Ret(0)
	if _, err := a.Assemble(); err == nil {
		t.Fatal("conditional branch spanning >255 insns must fail")
	}
}

func TestAssemblerUnconditionalLongJump(t *testing.T) {
	a := NewAssembler()
	a.Ja("far")
	for i := 0; i < 300; i++ {
		a.LoadImm(uint32(i))
	}
	a.Label("far")
	a.Ret(9)
	p, err := a.Assemble()
	if err != nil {
		t.Fatalf("ja has 32-bit range and must assemble: %v", err)
	}
	if got := runVM(t, p, nil); got != 9 {
		t.Fatalf("long ja got %d", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := NewAssembler()
	a.LoadAbsW(4)
	a.JeqImm(0xc000003e, "ok", "")
	a.Ret(0)
	a.Label("ok")
	a.Ret(0x7fff0000)
	p := a.MustAssemble()
	for _, order := range []binary.ByteOrder{binary.LittleEndian, binary.BigEndian} {
		b := Marshal(p, order)
		if len(b) != len(p)*InstructionSize {
			t.Fatalf("marshal size %d", len(b))
		}
		q, err := Unmarshal(b, order)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !Equal(p, q) {
			t.Fatalf("round trip mismatch under %v", order)
		}
	}
}

func TestUnmarshalBadLength(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 7), binary.LittleEndian); err == nil {
		t.Fatal("length not multiple of 8 must fail")
	}
}

func TestDisassembleStable(t *testing.T) {
	a := NewAssembler()
	a.LoadAbsW(0)
	a.JeqImm(92, "fake", "")
	a.Ret(0x7fff0000)
	a.Label("fake")
	a.Ret(0x00050000)
	p := a.MustAssemble()
	out := Disassemble(p)
	for _, want := range []string{"seccomp_data.nr", "ALLOW", "ERRNO(0)", "jeq"} {
		if !contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestQuickValidatedProgramsTerminate is the core safety property the
// kernel relies on: any program passing validation terminates and returns
// without error, for arbitrary input data.
func TestQuickValidatedProgramsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Program {
		n := 1 + rng.Intn(32)
		p := make(Program, 0, n+1)
		for i := 0; i < n; i++ {
			p = append(p, randomInsn(rng, n-i))
		}
		p = append(p, Stmt(ClassRET|RetK, uint32(rng.Uint32())))
		return p
	}
	var vm VM
	validated := 0
	for i := 0; i < 3000; i++ {
		p := gen()
		if p.Validate() != nil {
			continue
		}
		validated++
		data := make([]byte, rng.Intn(72))
		rng.Read(data)
		if _, err := vm.Run(p, data); err != nil {
			t.Fatalf("validated program failed at run time: %v\n%s", err, Disassemble(p))
		}
	}
	if validated < 100 {
		t.Fatalf("generator too weak: only %d/3000 programs validated", validated)
	}
}

// randomInsn produces a plausibly-valid instruction; remaining is the count
// of instructions after this one, used to keep most jumps in range so a
// useful fraction of programs validates.
func randomInsn(rng *rand.Rand, remaining int) Instruction {
	switch rng.Intn(7) {
	case 0:
		return Stmt(ClassLD|SizeW|ModeIMM, rng.Uint32())
	case 1:
		return Stmt(ClassLD|SizeW|ModeABS, uint32(rng.Intn(80)))
	case 2:
		return Stmt(ClassST, uint32(rng.Intn(MemWords)))
	case 3:
		ops := []uint16{ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALUXor}
		return Stmt(ClassALU|ops[rng.Intn(len(ops))]|SrcK, rng.Uint32())
	case 4:
		jt := uint8(rng.Intn(remaining + 1))
		jf := uint8(rng.Intn(remaining + 1))
		return Jump(ClassJMP|JmpJEQ|SrcK, rng.Uint32(), jt, jf)
	case 5:
		return Stmt(ClassMISC|MiscTAX, 0)
	default:
		return Stmt(ClassRET|RetK, rng.Uint32())
	}
}

// TestQuickMarshalRoundTrip property: Marshal∘Unmarshal is the identity for
// any instruction sequence.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(ops []uint16, ks []uint32) bool {
		n := len(ops)
		if len(ks) < n {
			n = len(ks)
		}
		p := make(Program, n)
		for i := 0; i < n; i++ {
			p[i] = Instruction{Op: ops[i], JT: uint8(ks[i]), JF: uint8(ks[i] >> 8), K: ks[i]}
		}
		b := Marshal(p, binary.LittleEndian)
		q, err := Unmarshal(b, binary.LittleEndian)
		return err == nil && Equal(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVMMinimalProgram(b *testing.B) {
	p := retProg(0x7fff0000)
	data := make([]byte, SeccompDataSize)
	var vm VM
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm.Run(p, data)
	}
}

func BenchmarkVMCanonicalFilter(b *testing.B) {
	// A realistic 64-instruction dispatch ladder.
	a := NewAssembler()
	a.LoadAbsW(0)
	for i := 0; i < 29; i++ {
		a.JeqImm(uint32(100+i), "fake", "")
	}
	a.Ret(0x7fff0000)
	a.Label("fake")
	a.Ret(0x00050000)
	p := a.MustAssemble()
	data := make([]byte, SeccompDataSize)
	var vm VM
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm.Run(p, data)
	}
}

func TestAnalyzeMinimal(t *testing.T) {
	st, err := Analyze(retProg(0))
	if err != nil || st.Shortest != 1 || st.Longest != 1 {
		t.Fatalf("minimal: %+v %v", st, err)
	}
}

func TestAnalyzeBranches(t *testing.T) {
	// ld; jeq -> ret / ld; ret — shortest 3, longest 4.
	p := Program{
		Stmt(ClassLD|SizeW|ModeABS, 0),
		Jump(ClassJMP|JmpJEQ|SrcK, 1, 0, 1),
		Stmt(ClassRET|RetK, 1),
		Stmt(ClassLD|SizeW|ModeIMM, 0),
		Stmt(ClassRET|RetK, 2),
	}
	st, err := Analyze(p)
	if err != nil || st.Shortest != 3 || st.Longest != 4 {
		t.Fatalf("branches: %+v %v", st, err)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze(Program{Stmt(ClassLD|SizeW|ModeIMM, 1)}); err == nil {
		t.Fatal("invalid program must not analyze")
	}
}

// TestQuickAnalyzeBoundsActualExecution: for random valid programs and
// random inputs, the interpreter never executes more instructions than the
// statically computed Longest path. (The Shortest bound does not hold
// universally: out-of-range data loads terminate execution early with
// return value 0.)
func TestQuickAnalyzeBoundsActualExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var vm VM
	checked := 0
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(24)
		p := make(Program, 0, n+1)
		for j := 0; j < n; j++ {
			p = append(p, randomInsn(rng, n-j))
		}
		p = append(p, Stmt(ClassRET|RetK, 0))
		st, err := Analyze(p)
		if err != nil {
			continue
		}
		checked++
		data := make([]byte, 80) // full seccomp_data: no early load exits
		rng.Read(data)
		vm.Run(p, data)
		if vm.Steps > st.Longest {
			t.Fatalf("steps %d exceed longest path %d:\n%s",
				vm.Steps, st.Longest, Disassemble(p))
		}
	}
	if checked < 100 {
		t.Fatalf("only %d programs analyzed", checked)
	}
}
