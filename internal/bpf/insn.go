// Package bpf implements the classic Berkeley Packet Filter (cBPF) virtual
// machine as used by Linux seccomp filter mode: instruction encoding, an
// assembler with symbolic labels, a kernel-equivalent verifier, a
// disassembler, and an interpreter.
//
// Seccomp filters are cBPF programs run by the kernel on every system call.
// This package reproduces the execution environment exactly as documented in
// seccomp(2) and the kernel's net/core/filter.c + kernel/seccomp.c, so that a
// filter program verified and evaluated here behaves identically to one
// loaded into a real kernel. The same program bytes can be handed to the
// native install path (internal/seccomp) or to the simulated kernel
// (internal/simos).
package bpf

import "fmt"

// Instruction classes (low 3 bits of the opcode).
const (
	ClassLD   = 0x00 // load into accumulator A
	ClassLDX  = 0x01 // load into index register X
	ClassST   = 0x02 // store A into scratch memory
	ClassSTX  = 0x03 // store X into scratch memory
	ClassALU  = 0x04 // arithmetic on A
	ClassJMP  = 0x05 // jumps
	ClassRET  = 0x06 // return
	ClassMISC = 0x07 // register transfers
)

// Load sizes (bits 3-4).
const (
	SizeW = 0x00 // 32-bit word
	SizeH = 0x08 // 16-bit half word
	SizeB = 0x10 // byte
)

// Load modes (bits 5-7).
const (
	ModeIMM = 0x00 // constant k
	ModeABS = 0x20 // absolute offset k into input data
	ModeIND = 0x40 // indirect offset X+k into input data
	ModeMEM = 0x60 // scratch memory slot k
	ModeLEN = 0x80 // length of input data
	ModeMSH = 0xa0 // IP header length hack (packet filters only)
)

// ALU/JMP source operand (bit 3).
const (
	SrcK = 0x00 // immediate k
	SrcX = 0x08 // register X
)

// ALU operations (bits 4-7).
const (
	ALUAdd = 0x00
	ALUSub = 0x10
	ALUMul = 0x20
	ALUDiv = 0x30
	ALUOr  = 0x40
	ALUAnd = 0x50
	ALULsh = 0x60
	ALURsh = 0x70
	ALUNeg = 0x80
	ALUMod = 0x90
	ALUXor = 0xa0
)

// Jump operations (bits 4-7).
const (
	JmpJA   = 0x00 // unconditional, target pc+1+k
	JmpJEQ  = 0x10
	JmpJGT  = 0x20
	JmpJGE  = 0x30
	JmpJSET = 0x40 // jump if A & operand != 0
)

// Return value sources (bits 3-4 of a ClassRET opcode).
const (
	RetK = 0x00 // return constant k
	RetX = 0x08 // return register X (rejected by seccomp's checker)
	RetA = 0x10 // return accumulator A
)

// MISC operations (bits 3-7).
const (
	MiscTAX = 0x00 // X = A
	MiscTXA = 0x80 // A = X
)

// MemWords is the number of 32-bit scratch memory slots available to a
// program (BPF_MEMWORDS in the kernel).
const MemWords = 16

// MaxInstructions is the kernel's BPF_MAXINSNS limit on program length.
const MaxInstructions = 4096

// Instruction is one cBPF instruction, laid out exactly like the kernel's
// struct sock_filter: a 16-bit opcode, two 8-bit conditional-jump offsets,
// and a 32-bit immediate.
type Instruction struct {
	Op uint16 // operation code
	JT uint8  // jump offset if true (conditional jumps only)
	JF uint8  // jump offset if false
	K  uint32 // immediate / offset operand
}

// InstructionSize is the wire size of one encoded instruction in bytes.
const InstructionSize = 8

// Class extracts the instruction class from an opcode.
func Class(op uint16) uint16 { return op & 0x07 }

// Size extracts the load size bits from an opcode.
func Size(op uint16) uint16 { return op & 0x18 }

// Mode extracts the addressing-mode bits from an opcode.
func Mode(op uint16) uint16 { return op & 0xe0 }

// ALUOp extracts the ALU operation bits from an opcode.
func ALUOp(op uint16) uint16 { return op & 0xf0 }

// JmpOp extracts the jump operation bits from an opcode.
func JmpOp(op uint16) uint16 { return op & 0xf0 }

// SrcOperand extracts the source-operand bit (SrcK or SrcX).
func SrcOperand(op uint16) uint16 { return op & 0x08 }

// RetSrc extracts the return-value source bits (RetK, RetX or RetA).
func RetSrc(op uint16) uint16 { return op & 0x18 }

// MiscOp extracts the MISC operation bits.
func MiscOp(op uint16) uint16 { return op & 0xf8 }

// Stmt builds a non-jump instruction (the kernel's BPF_STMT macro).
func Stmt(op uint16, k uint32) Instruction {
	return Instruction{Op: op, K: k}
}

// Jump builds a conditional-jump instruction (the kernel's BPF_JUMP macro).
func Jump(op uint16, k uint32, jt, jf uint8) Instruction {
	return Instruction{Op: op, JT: jt, JF: jf, K: k}
}

// Program is a complete cBPF program.
type Program []Instruction

// Validate reports whether the program passes the general cBPF checks the
// kernel applies at attach time (bpf_check_classic): length bounds, known
// opcodes, in-range jumps (forward only), in-range scratch slots, no division
// by constant zero, and a guaranteed return.
func (p Program) Validate() error { return validateClassic(p) }

// ValidateSeccomp reports whether the program additionally passes the
// seccomp-specific instruction whitelist (seccomp_check_filter): only a
// restricted opcode set is allowed and absolute loads must fall inside
// struct seccomp_data.
func (p Program) ValidateSeccomp() error { return validateSeccomp(p) }

func (i Instruction) String() string {
	return fmt.Sprintf("{op=%#04x jt=%d jf=%d k=%#x}", i.Op, i.JT, i.JF, i.K)
}
