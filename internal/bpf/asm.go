package bpf

import (
	"fmt"
	"sort"
)

// Assembler builds cBPF programs with symbolic jump labels, resolving them
// to the forward-only relative offsets the machine requires. It exists
// because hand-computing jt/jf offsets is exactly the error-prone step that
// motivates Charliecloud's generated-table approach; filter generators in
// internal/core emit through this type.
//
// Usage: append instructions with the emit methods, mark positions with
// Label, and call Assemble. Conditional branches name labels; unconditional
// Ja too. A label may be referenced before it is defined (forward jumps are
// the only legal kind).
type Assembler struct {
	insns  []Instruction
	labels map[string]int   // label -> instruction index it precedes
	fixups []fixup          // references awaiting resolution
	errs   []error          // accumulated emit-time errors
	marks  map[int][]string // for the disassembler: labels by index
}

type fixup struct {
	pc    int    // index of the referencing instruction
	label string // target label
	slot  fixupSlot
}

type fixupSlot int

const (
	slotJT fixupSlot = iota
	slotJF
	slotK // unconditional jump target
)

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		labels: make(map[string]int),
		marks:  make(map[int][]string),
	}
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.insns) }

// Label marks the position of the next emitted instruction. Defining the
// same label twice is an error reported by Assemble.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("bpf: asm: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.insns)
	a.marks[len(a.insns)] = append(a.marks[len(a.insns)], name)
}

// Raw appends a pre-built instruction verbatim.
func (a *Assembler) Raw(ins Instruction) { a.insns = append(a.insns, ins) }

// LoadAbsW emits LD|W|ABS: A = word at absolute offset off of the input.
func (a *Assembler) LoadAbsW(off uint32) {
	a.Raw(Stmt(ClassLD|SizeW|ModeABS, off))
}

// LoadImm emits LD|IMM: A = k.
func (a *Assembler) LoadImm(k uint32) { a.Raw(Stmt(ClassLD|SizeW|ModeIMM, k)) }

// LoadMem emits LD|MEM: A = scratch[slot].
func (a *Assembler) LoadMem(slot uint32) { a.Raw(Stmt(ClassLD|SizeW|ModeMEM, slot)) }

// StoreMem emits ST: scratch[slot] = A.
func (a *Assembler) StoreMem(slot uint32) { a.Raw(Stmt(ClassST, slot)) }

// LoadXImm emits LDX|IMM: X = k.
func (a *Assembler) LoadXImm(k uint32) { a.Raw(Stmt(ClassLDX|SizeW|ModeIMM, k)) }

// TAX emits MISC|TAX: X = A.
func (a *Assembler) TAX() { a.Raw(Stmt(ClassMISC|MiscTAX, 0)) }

// TXA emits MISC|TXA: A = X.
func (a *Assembler) TXA() { a.Raw(Stmt(ClassMISC|MiscTXA, 0)) }

// ALUAndImm emits ALU|AND|K: A &= k.
func (a *Assembler) ALUAndImm(k uint32) { a.Raw(Stmt(ClassALU|ALUAnd|SrcK, k)) }

// ALURshImm emits ALU|RSH|K: A >>= k.
func (a *Assembler) ALURshImm(k uint32) { a.Raw(Stmt(ClassALU|ALURsh|SrcK, k)) }

// Ret emits RET|K: return the constant v.
func (a *Assembler) Ret(v uint32) { a.Raw(Stmt(ClassRET|RetK, v)) }

// RetA emits RET|A: return the accumulator.
func (a *Assembler) RetA() { a.Raw(Stmt(ClassRET|RetA, 0)) }

// Ja emits an unconditional jump to label.
func (a *Assembler) Ja(label string) {
	a.fixups = append(a.fixups, fixup{pc: len(a.insns), label: label, slot: slotK})
	a.Raw(Stmt(ClassJMP|JmpJA, 0))
}

// JeqImm emits JEQ|K with both branches naming labels. The empty string
// means "fall through to the next instruction".
func (a *Assembler) JeqImm(k uint32, whenTrue, whenFalse string) {
	a.condJump(ClassJMP|JmpJEQ|SrcK, k, whenTrue, whenFalse)
}

// JgtImm emits JGT|K (unsigned A > k).
func (a *Assembler) JgtImm(k uint32, whenTrue, whenFalse string) {
	a.condJump(ClassJMP|JmpJGT|SrcK, k, whenTrue, whenFalse)
}

// JgeImm emits JGE|K (unsigned A >= k).
func (a *Assembler) JgeImm(k uint32, whenTrue, whenFalse string) {
	a.condJump(ClassJMP|JmpJGE|SrcK, k, whenTrue, whenFalse)
}

// JsetImm emits JSET|K (A & k != 0).
func (a *Assembler) JsetImm(k uint32, whenTrue, whenFalse string) {
	a.condJump(ClassJMP|JmpJSET|SrcK, k, whenTrue, whenFalse)
}

func (a *Assembler) condJump(op uint16, k uint32, whenTrue, whenFalse string) {
	pc := len(a.insns)
	if whenTrue != "" {
		a.fixups = append(a.fixups, fixup{pc: pc, label: whenTrue, slot: slotJT})
	}
	if whenFalse != "" {
		a.fixups = append(a.fixups, fixup{pc: pc, label: whenFalse, slot: slotJF})
	}
	a.Raw(Jump(op, k, 0, 0))
}

// Assemble resolves all label references and returns the finished program.
// It fails on undefined labels, backward jumps (illegal in cBPF), branch
// offsets exceeding the 8-bit conditional range, and accumulated emit
// errors. The returned program is a copy; the assembler may be reused after
// a call only by starting over.
func (a *Assembler) Assemble() (Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := make(Program, len(a.insns))
	copy(out, a.insns)
	// Deterministic error reporting: resolve in emission order.
	sort.SliceStable(a.fixups, func(i, j int) bool { return a.fixups[i].pc < a.fixups[j].pc })
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("bpf: asm: undefined label %q referenced at insn %d", f.label, f.pc)
		}
		delta := target - (f.pc + 1)
		if delta < 0 {
			return nil, fmt.Errorf("bpf: asm: backward jump to %q at insn %d (cBPF jumps must be forward)", f.label, f.pc)
		}
		switch f.slot {
		case slotK:
			out[f.pc].K = uint32(delta)
		case slotJT, slotJF:
			if delta > 255 {
				return nil, fmt.Errorf("bpf: asm: conditional branch to %q at insn %d spans %d insns (max 255)", f.label, f.pc, delta)
			}
			if f.slot == slotJT {
				out[f.pc].JT = uint8(delta)
			} else {
				out[f.pc].JF = uint8(delta)
			}
		}
	}
	return out, nil
}

// MustAssemble is Assemble for statically-known-good generators; it panics
// on error, which for internal/core means a programming bug in the filter
// builder, never bad user input.
func (a *Assembler) MustAssemble() Program {
	p, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

// LabelsAt returns the labels defined at instruction index pc, for the
// disassembler's annotated output.
func (a *Assembler) LabelsAt(pc int) []string { return a.marks[pc] }
