package bpf

import "fmt"

// PathStats reports the exact shortest and longest instruction paths from
// entry to any return — computable statically because validated cBPF is a
// DAG (forward-only jumps, no loops). The longest path bounds the
// per-syscall cost of a seccomp filter; it is the number the linear-vs-tree
// dispatch ablation turns on.
type PathStats struct {
	Shortest int // best-case instructions executed
	Longest  int // worst-case instructions executed
}

// Analyze computes PathStats for a validated program. It fails on programs
// that do not validate (the DP needs the DAG guarantee).
func Analyze(p Program) (PathStats, error) {
	if err := p.Validate(); err != nil {
		return PathStats{}, fmt.Errorf("bpf: analyze: %w", err)
	}
	n := len(p)
	longest := make([]int, n)
	shortest := make([]int, n)
	// Process in reverse: every successor of i has index > i.
	for pc := n - 1; pc >= 0; pc-- {
		ins := p[pc]
		succs := successors(ins, pc)
		if len(succs) == 0 { // RET
			longest[pc], shortest[pc] = 1, 1
			continue
		}
		lo, hi := 1<<30, 0
		for _, s := range succs {
			if longest[s] > hi {
				hi = longest[s]
			}
			if shortest[s] < lo {
				lo = shortest[s]
			}
		}
		longest[pc] = 1 + hi
		shortest[pc] = 1 + lo
	}
	return PathStats{Shortest: shortest[0], Longest: longest[0]}, nil
}

// successors lists the possible next instruction indices, empty for RET.
// Data loads that run off the input buffer terminate execution too, but
// with return value 0 — for path purposes they count as their fall-through
// (the worst case still dominates).
func successors(ins Instruction, pc int) []int {
	switch Class(ins.Op) {
	case ClassRET:
		return nil
	case ClassJMP:
		if JmpOp(ins.Op) == JmpJA {
			return []int{pc + 1 + int(ins.K)}
		}
		jt := pc + 1 + int(ins.JT)
		jf := pc + 1 + int(ins.JF)
		if jt == jf {
			return []int{jt}
		}
		return []int{jt, jf}
	}
	return []int{pc + 1}
}
