package bpf

import (
	"fmt"
	"strings"
)

// Disassemble renders the program in the two-column style of bpf_asm /
// libseccomp's scmp_bpf_disasm: index, mnemonic, operands, and resolved
// branch targets. It never fails; unknown opcodes render as raw words so a
// rejected program can still be inspected.
func Disassemble(p Program) string {
	var b strings.Builder
	for pc, ins := range p {
		fmt.Fprintf(&b, "%04d: %s\n", pc, DisasmInsn(ins, pc))
	}
	return b.String()
}

// DisasmInsn renders a single instruction. pc is used to resolve jump
// targets to absolute indices.
func DisasmInsn(ins Instruction, pc int) string {
	switch Class(ins.Op) {
	case ClassLD:
		return disasmLoad("ld", ins)
	case ClassLDX:
		return disasmLoad("ldx", ins)
	case ClassST:
		return fmt.Sprintf("st   M[%d]", ins.K)
	case ClassSTX:
		return fmt.Sprintf("stx  M[%d]", ins.K)
	case ClassALU:
		return disasmALU(ins)
	case ClassJMP:
		return disasmJump(ins, pc)
	case ClassRET:
		switch RetSrc(ins.Op) {
		case RetA:
			return "ret  A"
		case RetX:
			return "ret  X"
		default:
			return fmt.Sprintf("ret  %#08x%s", ins.K, retComment(ins.K))
		}
	case ClassMISC:
		if MiscOp(ins.Op) == MiscTAX {
			return "tax"
		}
		return "txa"
	}
	return fmt.Sprintf(".word %#04x %d %d %#x", ins.Op, ins.JT, ins.JF, ins.K)
}

func disasmLoad(mn string, ins Instruction) string {
	sz := map[uint16]string{SizeW: "", SizeH: "h", SizeB: "b"}[Size(ins.Op)]
	switch Mode(ins.Op) {
	case ModeIMM:
		return fmt.Sprintf("%-4s #%#x", mn, ins.K)
	case ModeABS:
		return fmt.Sprintf("%s%-3s [%d]%s", mn, sz, ins.K, seccompFieldComment(ins.K))
	case ModeIND:
		return fmt.Sprintf("%s%-3s [x + %d]", mn, sz, ins.K)
	case ModeMEM:
		return fmt.Sprintf("%-4s M[%d]", mn, ins.K)
	case ModeLEN:
		return fmt.Sprintf("%-4s len", mn)
	case ModeMSH:
		return fmt.Sprintf("%-4s 4*([%d]&0xf)", mn, ins.K)
	}
	return fmt.Sprintf("%-4s ?%#x", mn, ins.K)
}

func disasmALU(ins Instruction) string {
	names := map[uint16]string{
		ALUAdd: "add", ALUSub: "sub", ALUMul: "mul", ALUDiv: "div",
		ALUOr: "or", ALUAnd: "and", ALULsh: "lsh", ALURsh: "rsh",
		ALUNeg: "neg", ALUMod: "mod", ALUXor: "xor",
	}
	name := names[ALUOp(ins.Op)]
	if ALUOp(ins.Op) == ALUNeg {
		return "neg"
	}
	if SrcOperand(ins.Op) == SrcX {
		return fmt.Sprintf("%-4s x", name)
	}
	return fmt.Sprintf("%-4s #%#x", name, ins.K)
}

func disasmJump(ins Instruction, pc int) string {
	if JmpOp(ins.Op) == JmpJA {
		return fmt.Sprintf("ja   %d", pc+1+int(ins.K))
	}
	names := map[uint16]string{JmpJEQ: "jeq", JmpJGT: "jgt", JmpJGE: "jge", JmpJSET: "jset"}
	name := names[JmpOp(ins.Op)]
	operand := fmt.Sprintf("#%#x", ins.K)
	if SrcOperand(ins.Op) == SrcX {
		operand = "x"
	}
	return fmt.Sprintf("%-4s %s, %d, %d", name, operand, pc+1+int(ins.JT), pc+1+int(ins.JF))
}

// seccompFieldComment annotates absolute load offsets with the
// seccomp_data field they address, the single most useful hint when
// reading a generated filter.
func seccompFieldComment(off uint32) string {
	switch {
	case off == 0:
		return "  ; seccomp_data.nr"
	case off == 4:
		return "  ; seccomp_data.arch"
	case off == 8 || off == 12:
		return "  ; seccomp_data.instruction_pointer"
	case off >= 16 && off < SeccompDataSize:
		arg := (off - 16) / 8
		half := "lo"
		if (off-16)%8 == 4 {
			half = "hi"
		}
		return fmt.Sprintf("  ; seccomp_data.args[%d].%s", arg, half)
	}
	return ""
}

// retComment annotates common seccomp return constants.
func retComment(k uint32) string {
	switch k & 0xffff0000 {
	case 0x7fff0000:
		return "  ; ALLOW"
	case 0x00050000:
		return fmt.Sprintf("  ; ERRNO(%d)", k&0xffff)
	case 0x00030000:
		return "  ; TRAP"
	case 0x80000000:
		return "  ; KILL_PROCESS"
	case 0x7ffc0000:
		return "  ; LOG"
	case 0x7ff00000:
		return "  ; TRACE"
	}
	if k == 0 {
		return "  ; KILL_THREAD"
	}
	return ""
}
