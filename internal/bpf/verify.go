package bpf

import "fmt"

// VerifyError describes a program rejected by the verifier, identifying the
// offending instruction the same way the kernel's EINVAL would (by index).
type VerifyError struct {
	PC     int    // instruction index, -1 for whole-program errors
	Reason string // human-readable cause
}

func (e *VerifyError) Error() string {
	if e.PC < 0 {
		return "bpf: verify: " + e.Reason
	}
	return fmt.Sprintf("bpf: verify: insn %d: %s", e.PC, e.Reason)
}

func errAt(pc int, format string, args ...any) error {
	return &VerifyError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// validateClassic mirrors the kernel's bpf_check_classic(): every opcode must
// be known, all jumps must land strictly forward and inside the program
// (cBPF is verifiable precisely because it cannot loop), scratch-memory
// references must be within MemWords, constant division by zero is rejected,
// and the final reachable flow must end in RET (the kernel requires the last
// instruction to be a return).
func validateClassic(p Program) error {
	if len(p) == 0 {
		return &VerifyError{PC: -1, Reason: "empty program"}
	}
	if len(p) > MaxInstructions {
		return &VerifyError{PC: -1, Reason: fmt.Sprintf("program too long: %d > %d instructions", len(p), MaxInstructions)}
	}
	for pc, ins := range p {
		switch Class(ins.Op) {
		case ClassLD, ClassLDX:
			if err := checkLoad(pc, ins); err != nil {
				return err
			}
		case ClassST, ClassSTX:
			if Size(ins.Op) != 0 || Mode(ins.Op) != 0 {
				return errAt(pc, "unknown store opcode %#04x", ins.Op)
			}
			if ins.K >= MemWords {
				return errAt(pc, "scratch store slot %d out of range [0,%d)", ins.K, MemWords)
			}
		case ClassALU:
			if err := checkALU(pc, ins); err != nil {
				return err
			}
		case ClassJMP:
			if err := checkJump(pc, ins, len(p)); err != nil {
				return err
			}
		case ClassRET:
			switch RetSrc(ins.Op) {
			case RetK, RetA, RetX:
			default:
				return errAt(pc, "unknown return source in opcode %#04x", ins.Op)
			}
		case ClassMISC:
			switch MiscOp(ins.Op) {
			case MiscTAX, MiscTXA:
			default:
				return errAt(pc, "unknown misc opcode %#04x", ins.Op)
			}
		default:
			return errAt(pc, "unknown instruction class in opcode %#04x", ins.Op)
		}
	}
	last := p[len(p)-1]
	if Class(last.Op) != ClassRET {
		return errAt(len(p)-1, "program must end with a return, got opcode %#04x", last.Op)
	}
	return nil
}

func checkLoad(pc int, ins Instruction) error {
	cls := Class(ins.Op)
	mode := Mode(ins.Op)
	size := Size(ins.Op)
	switch mode {
	case ModeIMM, ModeLEN:
		// size bits must be W for these in practice; the kernel accepts
		// only the canonical encodings.
		if size != SizeW {
			return errAt(pc, "immediate/len load must be word-sized, opcode %#04x", ins.Op)
		}
	case ModeABS, ModeIND:
		if cls == ClassLDX && mode == ModeABS {
			return errAt(pc, "LDX does not support absolute mode")
		}
		if cls == ClassLDX && mode == ModeIND {
			return errAt(pc, "LDX does not support indirect mode")
		}
		switch size {
		case SizeW, SizeH, SizeB:
		default:
			return errAt(pc, "bad load size in opcode %#04x", ins.Op)
		}
	case ModeMEM:
		if ins.K >= MemWords {
			return errAt(pc, "scratch load slot %d out of range [0,%d)", ins.K, MemWords)
		}
	case ModeMSH:
		if cls != ClassLDX || size != SizeB {
			return errAt(pc, "MSH mode is only valid as LDX|B, opcode %#04x", ins.Op)
		}
	default:
		return errAt(pc, "unknown load mode in opcode %#04x", ins.Op)
	}
	return nil
}

func checkALU(pc int, ins Instruction) error {
	switch ALUOp(ins.Op) {
	case ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALULsh, ALURsh, ALUXor:
		// Shifts by constant >= 32 are undefined in C; the kernel rejects them.
		if op := ALUOp(ins.Op); (op == ALULsh || op == ALURsh) &&
			SrcOperand(ins.Op) == SrcK && ins.K >= 32 {
			return errAt(pc, "constant shift %d out of range [0,32)", ins.K)
		}
	case ALUDiv, ALUMod:
		if SrcOperand(ins.Op) == SrcK && ins.K == 0 {
			return errAt(pc, "division by constant zero")
		}
	case ALUNeg:
		if SrcOperand(ins.Op) != 0 {
			return errAt(pc, "NEG takes no source operand")
		}
	default:
		return errAt(pc, "unknown ALU op in opcode %#04x", ins.Op)
	}
	return nil
}

func checkJump(pc int, ins Instruction, n int) error {
	switch JmpOp(ins.Op) {
	case JmpJA:
		// Unconditional: target is pc+1+K. K is unsigned so jumps are
		// forward-only; guard overflow like the kernel does.
		if ins.K >= uint32(n) || uint32(pc)+1+ins.K >= uint32(n) {
			return errAt(pc, "unconditional jump to %d outside program of %d instructions", uint32(pc)+1+ins.K, n)
		}
	case JmpJEQ, JmpJGT, JmpJGE, JmpJSET:
		if pc+1+int(ins.JT) >= n {
			return errAt(pc, "true branch to %d outside program of %d instructions", pc+1+int(ins.JT), n)
		}
		if pc+1+int(ins.JF) >= n {
			return errAt(pc, "false branch to %d outside program of %d instructions", pc+1+int(ins.JF), n)
		}
	default:
		return errAt(pc, "unknown jump op in opcode %#04x", ins.Op)
	}
	return nil
}

// validateSeccomp mirrors the kernel's seccomp_check_filter(): on top of the
// classic checks, only a whitelist of instructions is permitted, and
// absolute loads must read 32-bit-aligned words inside struct seccomp_data.
// Notably RET|X, packet-data indirect loads, and the MSH hack are rejected —
// a seccomp filter cannot dereference pointers or return register X.
func validateSeccomp(p Program) error {
	if err := validateClassic(p); err != nil {
		return err
	}
	for pc, ins := range p {
		switch Class(ins.Op) {
		case ClassLD:
			switch Mode(ins.Op) {
			case ModeIMM, ModeMEM, ModeLEN:
				// allowed
			case ModeABS:
				if Size(ins.Op) != SizeW {
					return errAt(pc, "seccomp: absolute load must be word-sized")
				}
				if ins.K&3 != 0 {
					return errAt(pc, "seccomp: absolute load offset %d not 4-byte aligned", ins.K)
				}
				if ins.K >= SeccompDataSize {
					return errAt(pc, "seccomp: absolute load offset %d outside seccomp_data (%d bytes)", ins.K, SeccompDataSize)
				}
			default:
				return errAt(pc, "seccomp: load mode %#x not permitted", Mode(ins.Op))
			}
		case ClassLDX:
			switch Mode(ins.Op) {
			case ModeIMM, ModeMEM, ModeLEN:
			default:
				return errAt(pc, "seccomp: LDX mode %#x not permitted", Mode(ins.Op))
			}
		case ClassST, ClassSTX, ClassALU, ClassMISC:
			// all forms already validated by the classic pass
		case ClassJMP:
			// all jump forms allowed
		case ClassRET:
			if RetSrc(ins.Op) == RetX {
				return errAt(pc, "seccomp: RET|X not permitted")
			}
		}
	}
	return nil
}

// SeccompDataSize is sizeof(struct seccomp_data): int nr; __u32 arch;
// __u64 instruction_pointer; __u64 args[6].
const SeccompDataSize = 4 + 4 + 8 + 6*8
