package bpf

import (
	"errors"
	"fmt"
)

// VM executes cBPF programs with exactly the semantics of the kernel
// interpreter: 32-bit unsigned arithmetic on the accumulator A and index
// register X, 16 scratch words, forward-only jumps, and byte loads from the
// input buffer. A program that reads past the end of the input terminates
// with return value 0 (the kernel drops the packet / kills the task source
// data on out-of-range loads by returning 0).
//
// The zero value is ready to use; Run is not safe for concurrent use on the
// same VM (allocate one per goroutine or use Program.Run for a stateless
// call).
type VM struct {
	mem [MemWords]uint32

	// Steps counts instructions executed by the last Run, for the
	// overhead benchmarks (E8): seccomp's cost per syscall is the filter
	// path length.
	Steps int
}

// ErrNotValidated is returned by Run when the program fails validation.
// Callers should Validate (or ValidateSeccomp) once at install time, as the
// kernel does, rather than per execution.
var ErrNotValidated = errors.New("bpf: program failed validation")

// Run validates and executes the program over data, returning the filter's
// 32-bit return value. It is a convenience wrapper for one-shot use; for the
// per-syscall hot path use VM.Run with a pre-validated program.
func (p Program) Run(data []byte) (uint32, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotValidated, err)
	}
	var vm VM
	return vm.Run(p, data)
}

// Run executes a pre-validated program over the input buffer. Behaviour on
// an unvalidated program is undefined in the same way the kernel's would be;
// out-of-range data loads return 0 as the kernel interpreter does.
func (vm *VM) Run(p Program, data []byte) (uint32, error) {
	var a, x uint32
	for i := range vm.mem {
		vm.mem[i] = 0
	}
	vm.Steps = 0
	pc := 0
	for pc < len(p) {
		ins := p[pc]
		vm.Steps++
		next := pc + 1
		switch Class(ins.Op) {
		case ClassLD:
			switch Mode(ins.Op) {
			case ModeIMM:
				a = ins.K
			case ModeLEN:
				a = uint32(len(data))
			case ModeMEM:
				a = vm.mem[ins.K]
			case ModeABS:
				v, ok := loadData(data, ins.K, Size(ins.Op))
				if !ok {
					return 0, nil
				}
				a = v
			case ModeIND:
				v, ok := loadData(data, x+ins.K, Size(ins.Op))
				if !ok {
					return 0, nil
				}
				a = v
			}
		case ClassLDX:
			switch Mode(ins.Op) {
			case ModeIMM:
				x = ins.K
			case ModeLEN:
				x = uint32(len(data))
			case ModeMEM:
				x = vm.mem[ins.K]
			case ModeMSH:
				if int(ins.K) >= len(data) {
					return 0, nil
				}
				x = uint32(data[ins.K]&0x0f) << 2
			}
		case ClassST:
			vm.mem[ins.K] = a
		case ClassSTX:
			vm.mem[ins.K] = x
		case ClassALU:
			operand := ins.K
			if SrcOperand(ins.Op) == SrcX {
				operand = x
			}
			switch ALUOp(ins.Op) {
			case ALUAdd:
				a += operand
			case ALUSub:
				a -= operand
			case ALUMul:
				a *= operand
			case ALUDiv:
				if operand == 0 {
					return 0, nil // kernel: runtime div-by-zero via X returns 0
				}
				a /= operand
			case ALUMod:
				if operand == 0 {
					return 0, nil
				}
				a %= operand
			case ALUOr:
				a |= operand
			case ALUAnd:
				a &= operand
			case ALUXor:
				a ^= operand
			case ALULsh:
				if operand >= 32 {
					a = 0 // shifts by >=32: kernel JIT-consistent zero
				} else {
					a <<= operand
				}
			case ALURsh:
				if operand >= 32 {
					a = 0
				} else {
					a >>= operand
				}
			case ALUNeg:
				a = -a
			}
		case ClassJMP:
			switch JmpOp(ins.Op) {
			case JmpJA:
				next = pc + 1 + int(ins.K)
			default:
				operand := ins.K
				if SrcOperand(ins.Op) == SrcX {
					operand = x
				}
				var cond bool
				switch JmpOp(ins.Op) {
				case JmpJEQ:
					cond = a == operand
				case JmpJGT:
					cond = a > operand
				case JmpJGE:
					cond = a >= operand
				case JmpJSET:
					cond = a&operand != 0
				}
				if cond {
					next = pc + 1 + int(ins.JT)
				} else {
					next = pc + 1 + int(ins.JF)
				}
			}
		case ClassRET:
			switch RetSrc(ins.Op) {
			case RetK:
				return ins.K, nil
			case RetA:
				return a, nil
			case RetX:
				return x, nil
			}
		case ClassMISC:
			switch MiscOp(ins.Op) {
			case MiscTAX:
				x = a
			case MiscTXA:
				a = x
			}
		}
		pc = next
	}
	// Unreachable for validated programs (they must end in RET), but keep
	// the kernel's fail-safe of returning 0.
	return 0, nil
}

// loadData performs a big-endian load from the input buffer, the network
// byte order the classic packet-filter BPF machine specifies. Seccomp
// programs never use H/B loads (the verifier forbids them), and the W loads
// they perform are against a seccomp_data buffer that internal/seccomp
// serialises in the matching order, so both worlds observe correct values.
func loadData(data []byte, off uint32, size uint16) (uint32, bool) {
	n := uint32(len(data))
	switch size {
	case SizeW:
		if off > n || n-off < 4 {
			return 0, false
		}
		return uint32(data[off])<<24 | uint32(data[off+1])<<16 |
			uint32(data[off+2])<<8 | uint32(data[off+3]), true
	case SizeH:
		if off > n || n-off < 2 {
			return 0, false
		}
		return uint32(data[off])<<8 | uint32(data[off+1]), true
	case SizeB:
		if off >= n {
			return 0, false
		}
		return uint32(data[off]), true
	}
	return 0, false
}
