package cas

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"
)

// ErrBusy reports that an exclusive store operation (GC, Reset, journal
// compaction) could not take the store lock within its wait because
// another handle — usually another process — holds the store open.
// Nothing was modified; retry after the other process closes the store.
var ErrBusy = errors.New("cas: store locked by another handle")

// DefaultLockWait bounds how long exclusive operations wait for the
// store lock before failing with ErrBusy. Shared acquisition (Open)
// always blocks: the exclusive sections it can wait behind are short —
// one GC or compaction — while the converse wait (an exclusive taker
// behind an open build) lasts as long as the build, so only that
// direction needs a bound.
const DefaultLockWait = 60 * time.Second

// storeLock is the advisory cross-process lock on a store root, a
// flock(2) on DIR/lock. The protocol:
//
//   - every open handle holds the lock SHARED from Open to Close, so
//     appends and reads from any number of processes coexist;
//   - GC, Reset and journal compaction convert to EXCLUSIVE for the
//     critical section and convert back after, so a rewrite of the
//     journal (or a sweep of the blob directory) can never interleave
//     with another process's append — the writer either finishes before
//     the exclusive conversion is granted or opens after it releases.
//
// flock locks attach to the open file description, so two Dir handles
// in one process exclude each other exactly like two processes do. A
// failed nonblocking conversion may drop the held lock on the way (the
// kernel converts by unlock-then-lock), so every failure path here
// re-acquires the shared lock before returning.
//
// On platforms without flock (see lock_other.go) the lock degrades to a
// no-op and the store keeps the previous single-process guarantees.
type storeLock struct {
	f *os.File
}

// openLock opens (creating if absent) the lock file and acquires the
// shared lock, blocking until any exclusive holder releases.
func openLock(path string) (*storeLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cas: lock: %w", err)
	}
	if err := flockShared(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cas: lock: %w", err)
	}
	return &storeLock{f: f}, nil
}

// exclusive converts the held shared lock to exclusive, polling for up
// to wait (wait <= 0 tries once) or until ctx is done. On timeout it
// restores the shared lock and returns ErrBusy; on cancellation it does
// the same and returns the context error. The caller's handle stays
// fully usable either way.
func (l *storeLock) exclusive(ctx context.Context, wait time.Duration) error {
	start := time.Now()
	deadline := start.Add(wait)
	for {
		ok, err := flockExclusiveNB(l.f)
		if err != nil {
			l.reshare()
			return fmt.Errorf("cas: lock: %w", err)
		}
		if ok {
			mFlockWaitSeconds.ObserveSince(start)
			return nil
		}
		if !time.Now().Before(deadline) {
			mFlockWaitSeconds.ObserveSince(start)
			mBusy.Inc()
			if err := l.reshare(); err != nil {
				return err
			}
			return ErrBusy
		}
		select {
		case <-ctx.Done():
			if err := l.reshare(); err != nil {
				return err
			}
			return fmt.Errorf("cas: lock: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// shared converts the lock back to shared after an exclusive section.
func (l *storeLock) shared() error {
	return l.reshare()
}

func (l *storeLock) reshare() error {
	if err := flockShared(l.f); err != nil {
		return fmt.Errorf("cas: lock: %w", err)
	}
	return nil
}

// close releases whatever lock is held and closes the file.
func (l *storeLock) close() error {
	return l.f.Close()
}
