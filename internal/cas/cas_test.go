package cas

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// ctx is the no-deadline context the package tests thread through the
// store's context-taking methods.
var ctx = context.Background()

func openT(t *testing.T, root string) (*Dir, Report) {
	t.Helper()
	d, rep, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, rep
}

func TestBlobRoundTrip(t *testing.T) {
	d, rep := openT(t, t.TempDir())
	if rep.Quarantined() {
		t.Fatalf("fresh store reports damage: %+v", rep)
	}
	data := []byte("layer bytes")
	digest, err := d.PutBlob(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(digest, DigestPrefix) {
		t.Fatalf("digest %q", digest)
	}
	// Re-put is a no-op, not an error.
	if d2, err := d.PutBlob(ctx, data); err != nil || d2 != digest {
		t.Fatalf("re-put: %q %v", d2, err)
	}
	got, err := d.Blob(ctx, digest)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Blob: %q %v", got, err)
	}
	if !d.HasBlob(digest) || d.HasBlob(Sum([]byte("other"))) {
		t.Fatal("HasBlob wrong")
	}
	if _, err := d.Blob(ctx, "sha256:doge"); err == nil {
		t.Fatal("malformed digest accepted")
	}
}

func TestJournalStateSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	layer := []byte("step layer")
	if err := d.PutStep(ctx, "key1", layer, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "key2", nil, 0); err != nil {
		t.Fatal(err)
	}
	ld, _ := d.PutBlob(ctx, []byte("tag layer"))
	if err := d.PutTag(ctx, "app:1", []string{ld}, []byte(`{"user":"u"}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.PutChain(ctx, "sha256:chain", []string{ld}, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutTag(ctx, "gone:1", []string{ld}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteTag(ctx, "gone:1"); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("clean store reports damage: %+v", rep)
	}
	st, ok := d2.Step("key1")
	if !ok || st.Modified != 2 || st.Layer != Sum(layer) {
		t.Fatalf("step: %+v ok=%v", st, ok)
	}
	if got, err := d2.Blob(ctx, st.Layer); err != nil || string(got) != "step layer" {
		t.Fatalf("step layer: %q %v", got, err)
	}
	if st2, ok := d2.Step("key2"); !ok || st2.Layer != "" {
		t.Fatalf("empty-layer step: %+v ok=%v", st2, ok)
	}
	tg, ok := d2.Tag("app:1")
	if !ok || len(tg.Layers) != 1 || tg.Layers[0] != ld || string(tg.Config) != `{"user":"u"}` {
		t.Fatalf("tag: %+v ok=%v", tg, ok)
	}
	if _, ok := d2.Tag("gone:1"); ok {
		t.Fatal("untag did not survive reopen")
	}
	if names := d2.TagNames(); len(names) != 1 || names[0] != "app:1" {
		t.Fatalf("TagNames: %v", names)
	}
	ch, ok := d2.Chain("sha256:chain")
	if !ok || ch.Snap != Sum([]byte("snapshot")) {
		t.Fatalf("chain: %+v ok=%v", ch, ok)
	}
}

func TestTagRejectsMissingLayer(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	if err := d.PutTag(ctx, "x:1", []string{Sum([]byte("never stored"))}, nil); err == nil {
		t.Fatal("dangling tag accepted")
	}
}

func TestOpenOnFileFails(t *testing.T) {
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(f); err == nil {
		t.Fatal("Open on a regular file succeeded")
	}
}

// A torn tail — the classic crash shape — must quarantine only the torn
// line; every record before it replays.
func TestTornJournalTailRecovered(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "good", []byte("bytes"), 0); err != nil {
		t.Fatal(err)
	}
	d.Close()
	j := filepath.Join(root, "journal")
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half of a new line, no newline.
	torn := append(data, []byte("deadbeef {\"t\":\"step\",\"key\":\"half")...)
	if err := os.WriteFile(j, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rep := openT(t, root)
	if rep.JournalQuarantined != 1 {
		t.Fatalf("quarantined %d lines, want 1 (%+v)", rep.JournalQuarantined, rep)
	}
	if _, ok := d2.Step("good"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := d2.Step("half"); ok {
		t.Fatal("torn record applied")
	}
	// The torn line is preserved for post-mortems.
	if _, err := os.Stat(filepath.Join(root, "quarantine", "journal.bad")); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	// Appending after recovery keeps working — and because recovery
	// compacted the journal (the fragment is gone from the file, not just
	// skipped), the appended record must NOT merge with the torn tail.
	if err := d2.PutStep(ctx, "after", nil, 0); err != nil {
		t.Fatal(err)
	}
	d2.Close()

	d3, rep3 := openT(t, root)
	if rep3.Quarantined() {
		t.Fatalf("damage reported again after recovery: %+v", rep3)
	}
	if _, ok := d3.Step("after"); !ok {
		t.Fatal("record appended after torn-tail recovery lost at next open")
	}
	if _, ok := d3.Step("good"); !ok {
		t.Fatal("pre-tear record lost after recovery")
	}
}

// A bit-flip inside the journal fails the line checksum; the damaged line
// is dropped, the rest replay.
func TestCorruptJournalLineQuarantined(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "b", nil, 0); err != nil {
		t.Fatal(err)
	}
	d.Close()
	j := filepath.Join(root, "journal")
	data, _ := os.ReadFile(j)
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = strings.Replace(lines[0], `"a"`, `"z"`, 1) // payload no longer matches checksum
	os.WriteFile(j, []byte(strings.Join(lines, "")), 0o644)

	d2, rep := openT(t, root)
	if rep.JournalQuarantined != 1 {
		t.Fatalf("quarantined %d, want 1", rep.JournalQuarantined)
	}
	if _, ok := d2.Step("a"); ok {
		t.Fatal("corrupt line applied")
	}
	if _, ok := d2.Step("z"); ok {
		t.Fatal("tampered line applied")
	}
	if _, ok := d2.Step("b"); !ok {
		t.Fatal("intact line lost")
	}
}

// A truncated blob is caught by open-time fsck, moved to quarantine, and
// every record referencing it is dropped — the build re-executes those
// steps instead of failing.
func TestCorruptBlobQuarantinedAtOpen(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	layer := []byte("will be truncated")
	if err := d.PutStep(ctx, "victim", layer, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "bystander", []byte("fine"), 0); err != nil {
		t.Fatal(err)
	}
	digest, _ := d.PutBlob(ctx, []byte("tagged bytes"))
	if err := d.PutTag(ctx, "app:1", []string{digest}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.PutChain(ctx, "sha256:c1", []string{Sum(layer)}, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	p, err := (&Dir{root: root}).blobPath(Sum(layer))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, layer[:5], 0o644); err != nil { // truncate
		t.Fatal(err)
	}

	d2, rep := openT(t, root)
	if rep.BlobsQuarantined != 1 {
		t.Fatalf("blobs quarantined %d, want 1 (%+v)", rep.BlobsQuarantined, rep)
	}
	// The step whose layer died and the chain built on that layer drop.
	if rep.RecordsDropped != 2 {
		t.Fatalf("records dropped %d, want 2 (%+v)", rep.RecordsDropped, rep)
	}
	if _, ok := d2.Step("victim"); ok {
		t.Fatal("step with corrupt layer survived")
	}
	if _, ok := d2.Chain("sha256:c1"); ok {
		t.Fatal("chain with corrupt member survived")
	}
	if _, ok := d2.Step("bystander"); !ok {
		t.Fatal("unrelated step lost")
	}
	if _, ok := d2.Tag("app:1"); !ok {
		t.Fatal("unrelated tag lost")
	}
	// The bad bytes were preserved, not deleted.
	ents, _ := os.ReadDir(filepath.Join(root, "quarantine"))
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d entries, want 1", len(ents))
	}
}

// Bit rot after open is caught on read: Blob verifies, quarantines and
// misses rather than returning wrong bytes.
func TestBlobVerifiedOnRead(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	digest, err := d.PutBlob(ctx, []byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := d.blobPath(digest)
	os.WriteFile(p, []byte("scribbled"), 0o644)
	if _, err := d.Blob(ctx, digest); err == nil {
		t.Fatal("corrupt blob served")
	}
	if d.HasBlob(digest) {
		t.Fatal("corrupt blob still present after quarantine")
	}
}

// Stranded temp files from a crashed writer are removed at open.
func TestStrandedTempFilesCleared(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	d.Close()
	tmp := filepath.Join(root, "tmp", "blob-99-deadbeef")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	openT(t, root)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stranded temp file survived open")
	}
}

func TestReset(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	d.PutStep(ctx, "k", []byte("x"), 0)
	digest, _ := d.PutBlob(ctx, []byte("y"))
	d.PutTag(ctx, "t:1", []string{digest}, nil)
	if err := d.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Step("k"); ok {
		t.Fatal("step survived reset")
	}
	if n, _ := d.BlobStats(); n != 0 {
		t.Fatalf("%d blobs survived reset", n)
	}
	// The store stays usable after a reset.
	if err := d.PutStep(ctx, "k2", []byte("z"), 0); err != nil {
		t.Fatal(err)
	}
}

// Many goroutines hammering one handle — the build pool's write pattern —
// must neither race (run with -race) nor lose records.
func TestConcurrentWriters(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				layer := []byte(fmt.Sprintf("layer-%d-%d", w, i))
				if err := d.PutStep(ctx, fmt.Sprintf("key-%d-%d", w, i), layer, 0); err != nil {
					errs <- err
					return
				}
				// Contend on one shared blob too.
				if _, err := d.PutBlob(ctx, []byte("shared")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(d.Steps()); got != writers*each {
		t.Fatalf("steps after concurrent writes: %d, want %d", got, writers*each)
	}
	d.Close()

	// Everything written under contention replays on a fresh open.
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("contended store reports damage: %+v", rep)
	}
	if got := len(d2.Steps()); got != writers*each {
		t.Fatalf("steps after reopen: %d, want %d", got, writers*each)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			st, ok := d2.Step(fmt.Sprintf("key-%d-%d", w, i))
			if !ok {
				t.Fatalf("key-%d-%d lost", w, i)
			}
			if got, err := d2.Blob(ctx, st.Layer); err != nil ||
				string(got) != fmt.Sprintf("layer-%d-%d", w, i) {
				t.Fatalf("layer %d-%d: %q %v", w, i, got, err)
			}
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	d.Close()
	if err := d.PutStep(ctx, "k", nil, 0); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// A handle whose journal was replaced underneath it must not append into
// the unlinked inode: the next append detects the orphan and rewrites the
// journal from its own state first. A *cooperating* handle can no longer
// cause this (its compaction blocks on our shared flock), so the test
// plays a non-cooperating external writer: it renames a fresh copy of the
// journal into place by hand, orphaning d1's append fd.
func TestAppendAfterExternalCompactionNotLost(t *testing.T) {
	root := t.TempDir()
	d1, _ := openT(t, root)
	if err := d1.PutStep(ctx, "before", []byte("layer-b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d1.PutTag(ctx, "root:1", []string{Sum([]byte("layer-b"))}, nil); err != nil {
		t.Fatal(err)
	}

	// External rewrite: same bytes, new inode.
	j := filepath.Join(root, "journal")
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	ext := filepath.Join(root, "ext-journal")
	if err := os.WriteFile(ext, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(ext, j); err != nil {
		t.Fatal(err)
	}

	if err := d1.PutStep(ctx, "after", []byte("layer-a"), 0); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d3, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("damage after orphan recovery: %+v", rep)
	}
	if _, ok := d3.Step("after"); !ok {
		t.Fatal("record appended through an orphaned handle lost")
	}
	if _, ok := d3.Step("before"); !ok {
		t.Fatal("pre-rewrite record lost")
	}
}

// A blob that exists but cannot be served (wrong file type standing in
// for EACCES/EIO) is quarantined on read, so a later re-put of the good
// bytes heals the store instead of stat-hitting the broken file forever.
func TestUnserveableBlobHealsOnRePut(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	data := []byte("healable bytes")
	digest, err := d.PutBlob(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := d.blobPath(digest)
	// Replace the blob file with a directory: present, unreadable as a file.
	if err := os.Remove(p); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(p, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Blob(ctx, digest); err == nil {
		t.Fatal("unserveable blob served")
	}
	// The broken entry was moved aside; re-putting the bytes heals.
	if _, err := d.PutBlob(ctx, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Blob(ctx, digest)
	if err != nil || string(got) != string(data) {
		t.Fatalf("after heal: %q %v", got, err)
	}
}
