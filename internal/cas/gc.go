package cas

import (
	"fmt"
	"os"
)

// GCStats reports what a garbage collection swept and kept.
type GCStats struct {
	TagsKept      int   // roots the mark phase started from
	BlobsKept     int   // blob files still referenced
	BlobsSwept    int   // blob files deleted
	BytesSwept    int64 // bytes freed by deleted blobs
	StepsDropped  int   // instruction-cache entries whose layer was swept
	ChainsDropped int   // flatten-chain indexes whose members were swept
}

// GC is mark-and-sweep from the tagged roots. A blob survives iff some
// remaining tag's layer chain references it; a flatten-chain index
// survives iff it has members and every one survives (its snapshot blob
// is then kept too); an instruction-cache entry with a layer survives iff
// that layer blob survives. Everything else — untagged intermediate-stage
// layers, entries for steps no tagged image retains — is deleted, and the
// journal is compacted to exactly the surviving records. On an empty
// store GC is a no-op.
//
// Steps that recorded no layer carry no reachability information and are
// always kept; they cost one journal line each and nothing in the blob
// store. GC holds the Dir lock throughout, and the Put* writers hold it
// across their blob-write + journal-append pairs, so a sweep never runs
// between a blob landing and the record that references it.
func (d *Dir) GC() (GCStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	marked := map[string]bool{}
	for _, tg := range d.tags {
		for _, l := range tg.Layers {
			marked[l] = true
		}
	}
	var stats GCStats
	stats.TagsKept = len(d.tags)

	for key, ch := range d.chains {
		keep := len(ch.Layers) > 0 // a memberless chain is unreachable by construction
		for _, l := range ch.Layers {
			keep = keep && marked[l]
		}
		if keep {
			marked[ch.Snap] = true
		} else {
			delete(d.chains, key)
			stats.ChainsDropped++
		}
	}
	for key, st := range d.steps {
		if st.Layer != "" && !marked[st.Layer] {
			delete(d.steps, key)
			stats.StepsDropped++
		}
	}

	// Sweep: every blob file not marked goes away.
	var sweepErr error
	d.walkBlobs(func(digest, p string, ent os.DirEntry) {
		if sweepErr != nil {
			return
		}
		if marked[digest] {
			stats.BlobsKept++
			return
		}
		if info, err := ent.Info(); err == nil {
			stats.BytesSwept += info.Size()
		}
		if err := os.Remove(p); err != nil {
			sweepErr = fmt.Errorf("cas: gc: %w", err)
			return
		}
		stats.BlobsSwept++
	})
	if sweepErr != nil {
		return stats, sweepErr
	}

	if err := d.writeCompactJournal(); err != nil {
		return stats, err
	}
	return stats, nil
}
