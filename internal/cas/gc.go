package cas

import (
	"context"
	"fmt"
	"os"
	"sort"
)

// GCStats reports what a garbage collection swept, evicted and kept.
type GCStats struct {
	TagsKept      int   // roots the mark phase started from
	BlobsKept     int   // blob files still present after the collection
	BlobsSwept    int   // blob files deleted
	BytesSwept    int64 // bytes freed by deleted blobs
	BytesKept     int64 // bytes still on disk after the collection
	StepsDropped  int   // instruction-cache entries removed
	ChainsDropped int   // flatten-chain indexes removed
}

// Budget parameterises GC. The zero value selects the full reachability
// sweep; MaxBytes > 0 selects the size-budgeted policy instead.
type Budget struct {
	// MaxBytes, when > 0, bounds the blob store: instead of dropping
	// everything no tag reaches, GC keeps every record (warm cache
	// entries for untagged intermediates included) and evicts the
	// least-recently-recorded unpinned steps and chains — journal order,
	// oldest first — until the blob bytes fit the budget. Tag records
	// and the layers they reference are pins: they are never evicted,
	// so a budget smaller than the pinned bytes is reported via
	// GCStats.BytesKept rather than enforced.
	MaxBytes int64
}

// GC collects garbage under the exclusive store lock (failing with
// ErrBusy if another process keeps the store open past the lock wait),
// then compacts the journal to exactly the surviving records.
//
// With a zero Budget this is mark-and-sweep from the tagged roots. A
// blob survives iff some remaining tag's layer chain references it; a
// flatten-chain index survives iff it has members and every one
// survives (its snapshot blob is then kept too); an instruction-cache
// entry with a layer survives iff that layer blob survives. Everything
// else — untagged intermediate-stage layers, entries for steps no
// tagged image retains — is deleted. On an empty store GC is a no-op.
//
// With Budget.MaxBytes > 0 the policy flips from reachability to
// recency: see Budget.
//
// Steps that recorded no layer carry no reachability information and are
// always kept; they cost one journal line each and nothing in the blob
// store. GC holds the Dir lock throughout, and the Put* writers hold it
// across their blob-write + journal-append pairs, so a sweep never runs
// between a blob landing and the record that references it. The store
// lock extends the same guarantee across processes.
func (d *Dir) GC(ctx context.Context, b Budget) (GCStats, error) {
	if err := ctxErr(ctx); err != nil {
		return GCStats{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return GCStats{}, fmt.Errorf("cas: store is closed")
	}
	if err := d.failpoint(OpLock); err != nil {
		return GCStats{}, fmt.Errorf("cas: gc: %w", err)
	}
	if err := d.lock.exclusive(ctx, d.lockWait); err != nil {
		return GCStats{}, err
	}
	// Exclusive conversion may have waited behind other writers (and
	// briefly released our shared hold): replay the journal as it stands
	// now, or the compaction below would clobber their records.
	var stats GCStats
	err := d.reloadJournalLocked()
	if err == nil {
		if b.MaxBytes > 0 {
			stats, err = d.gcBudgetLocked(b)
		} else {
			stats, err = d.gcFullLocked()
		}
	}
	if err == nil {
		err = d.writeCompactJournalLocked()
	}
	if serr := d.lock.shared(); err == nil {
		err = serr
	}
	if err == nil {
		mGCSweptBlobs.Add(uint64(stats.BlobsSwept))
		mGCSweptBytes.Add(uint64(stats.BytesSwept))
	}
	return stats, err
}

// gcFullLocked is the reachability sweep. Callers hold d.mu and the exclusive
// store lock.
func (d *Dir) gcFullLocked() (GCStats, error) {
	marked := map[string]bool{}
	for _, tg := range d.tags {
		for _, l := range tg.Layers {
			marked[l] = true
		}
	}
	var stats GCStats
	stats.TagsKept = len(d.tags)

	for key, ch := range d.chains {
		keep := len(ch.Layers) > 0 // a memberless chain is unreachable by construction
		for _, l := range ch.Layers {
			keep = keep && marked[l]
		}
		if keep {
			marked[ch.Snap] = true
		} else {
			delete(d.chains, key)
			delete(d.order, "c:"+key)
			stats.ChainsDropped++
		}
	}
	for key, st := range d.steps {
		if st.Layer != "" && !marked[st.Layer] {
			delete(d.steps, key)
			delete(d.order, "s:"+key)
			stats.StepsDropped++
		}
	}

	// Sweep: every blob file not marked goes away.
	var sweepErr error
	d.walkBlobs(func(digest, p string, ent os.DirEntry) {
		if sweepErr != nil {
			return
		}
		size := int64(0)
		if info, err := ent.Info(); err == nil {
			size = info.Size()
		}
		if marked[digest] {
			stats.BlobsKept++
			stats.BytesKept += size
			return
		}
		if err := os.Remove(p); err != nil {
			sweepErr = fmt.Errorf("cas: gc: %w", err)
			return
		}
		stats.BlobsSwept++
		stats.BytesSwept += size
	})
	if sweepErr != nil {
		return stats, sweepErr
	}
	return stats, nil
}

// gcBudgetLocked is the size-budgeted policy: keep the cache as warm as the
// budget allows. Blobs referenced by no record at all are garbage in any
// policy and go first; then the least-recently-recorded steps and chains
// are evicted — with the blobs only they referenced — until the store
// fits. Callers hold d.mu and the exclusive store lock.
func (d *Dir) gcBudgetLocked(b Budget) (GCStats, error) {
	var stats GCStats
	stats.TagsKept = len(d.tags)

	// Pins and reference counts. A chain holds references on its member
	// layers as well as its snapshot: evicting a step must not delete a
	// blob a surviving chain still lists, or the chain record would
	// dangle and read as damage at the next open.
	pinned := map[string]bool{}
	for _, tg := range d.tags {
		for _, l := range tg.Layers {
			pinned[l] = true
		}
	}
	ref := map[string]int{}
	for _, st := range d.steps {
		if st.Layer != "" {
			ref[st.Layer]++
		}
	}
	for _, ch := range d.chains {
		ref[ch.Snap]++
		for _, l := range ch.Layers {
			ref[l]++
		}
	}

	// Sweep unreferenced blobs; size the referenced ones.
	sizes := map[string]int64{}
	var total int64
	var sweepErr error
	d.walkBlobs(func(digest, p string, ent os.DirEntry) {
		if sweepErr != nil {
			return
		}
		size := int64(0)
		if info, err := ent.Info(); err == nil {
			size = info.Size()
		}
		if !pinned[digest] && ref[digest] == 0 {
			if err := os.Remove(p); err != nil {
				sweepErr = fmt.Errorf("cas: gc: %w", err)
				return
			}
			stats.BlobsSwept++
			stats.BytesSwept += size
			return
		}
		sizes[digest] = size
		total += size
	})
	if sweepErr != nil {
		return stats, sweepErr
	}
	blobsKept := len(sizes)

	// release drops one reference; the blob file goes once nothing holds
	// it and no tag pins it.
	release := func(digest string) error {
		if digest == "" {
			return nil
		}
		ref[digest]--
		if ref[digest] > 0 || pinned[digest] {
			return nil
		}
		p, err := d.blobPath(digest)
		if err != nil {
			return nil // malformed digest in an old record: nothing on disk
		}
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("cas: gc: %w", err)
		}
		total -= sizes[digest]
		blobsKept--
		stats.BlobsSwept++
		stats.BytesSwept += sizes[digest]
		return nil
	}

	// Evict in journal order, oldest record first. Steps whose layer a
	// tag pins are skipped: evicting them frees no bytes and only makes
	// the cache colder, and steps with no layer likewise cost nothing.
	type victim struct {
		seq     uint64
		isChain bool
		key     string
	}
	var victims []victim
	for key, st := range d.steps {
		if st.Layer == "" || pinned[st.Layer] {
			continue
		}
		victims = append(victims, victim{d.order["s:"+key], false, key})
	}
	for key := range d.chains {
		victims = append(victims, victim{d.order["c:"+key], true, key})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, v := range victims {
		if total <= b.MaxBytes {
			break
		}
		if v.isChain {
			ch := d.chains[v.key]
			delete(d.chains, v.key)
			delete(d.order, "c:"+v.key)
			stats.ChainsDropped++
			if err := release(ch.Snap); err != nil {
				return stats, err
			}
			for _, l := range ch.Layers {
				if err := release(l); err != nil {
					return stats, err
				}
			}
		} else {
			st := d.steps[v.key]
			delete(d.steps, v.key)
			delete(d.order, "s:"+v.key)
			stats.StepsDropped++
			if err := release(st.Layer); err != nil {
				return stats, err
			}
		}
	}
	stats.BlobsKept = blobsKept
	stats.BytesKept = total
	return stats, nil
}
