//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package cas

import (
	"os"
	"syscall"
)

// flockShared takes (or converts to) a shared flock, blocking. EINTR is
// retried: a signal must not silently leave the handle unlocked.
func flockShared(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH)
		if err != syscall.EINTR {
			return err
		}
	}
}

// flockExclusiveNB attempts a nonblocking conversion to an exclusive
// flock. It reports whether the lock was acquired; EWOULDBLOCK is not
// an error, just "somebody else holds it". Note the kernel converts by
// unlock-then-lock, so after a false return the previously held shared
// lock may be gone — callers must re-acquire it.
func flockExclusiveNB(f *os.File) (bool, error) {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		switch err {
		case nil:
			return true, nil
		case syscall.EINTR:
			continue
		case syscall.EWOULDBLOCK:
			return false, nil
		default:
			return false, err
		}
	}
}
