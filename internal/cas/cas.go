// Package cas is the persistent content-addressed store behind warm
// cross-invocation builds — the on-disk analog of ch-image's storage
// directory. A Dir holds three things:
//
//   - a sharded blob directory (blobs/sha256/<aa>/<rest>) of write-once
//     byte strings keyed by their digest: image layers, flatten-chain
//     snapshots and instruction-cache layers all land here, deduplicated
//     by content;
//   - an append-only journal of metadata records — instruction-cache
//     entries, image tags and flatten-chain indexes — each line carrying
//     its own checksum so a torn tail or a flipped bit is detected, not
//     replayed;
//   - a quarantine directory where corrupt blobs and journal lines are
//     moved at open, so a damaged store degrades to a colder cache
//     instead of a failed build.
//
// Crash safety is by construction rather than by fsync discipline: blobs
// are written to a private temp file and renamed into place (readers never
// observe a partial blob under a valid name), journal lines are appended
// in one write and validated by checksum at open, and every record only
// *references* blobs by digest — so the worst a crash can do is strand a
// temp file (removed at next open) or tear the final journal line
// (quarantined at next open). Records that survive the checksum but
// reference a missing or quarantined blob are dropped at open the same
// way; the affected build steps simply re-execute.
//
// Cross-process safety is by an advisory flock on DIR/lock: every open
// handle holds it shared, and the operations that rewrite the journal or
// sweep the blob directory — GC, Reset, compaction — convert to exclusive
// first (bounded by the lock wait; see ErrBusy), so a maintenance pass in
// one process can never interleave with an append in another. See
// storeLock for the full protocol.
//
// The higher layers attach a Dir with image.Store.SetBacking and
// build.NewPersistentCache; ch-image exposes it as --cache-dir and the
// cache ls|gc|reset subcommands.
package cas

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DigestPrefix is the digest scheme every blob key carries, matching
// image.Digest's rendering.
const DigestPrefix = "sha256:"

// Sum computes the canonical digest of data ("sha256:<hex>").
//
//chlint:keyroot
func Sum(data []byte) string {
	sum := sha256.Sum256(data)
	return DigestPrefix + hex.EncodeToString(sum[:])
}

// Step is one persisted instruction-cache entry: the cache key, the digest
// of the layer blob the instruction produced ("" when it changed nothing)
// and the apt-workaround rewrite count it reported.
type Step struct {
	Key      string `json:"key"`
	Layer    string `json:"layer,omitempty"`
	Modified int    `json:"modified,omitempty"`
}

// Tag is one persisted image tag: the ordered layer digests and the
// marshalled image config.
type Tag struct {
	Name   string          `json:"name"`
	Layers []string        `json:"layers"`
	Config json.RawMessage `json:"config,omitempty"`
}

// Chain is one persisted flatten-chain index: the chain digest (see
// image.ChainDigest), the layer digests the chain is made of (the GC
// roots that keep it alive) and the digest of the packed whole-tree
// snapshot blob a warm process rehydrates instead of re-flattening.
type Chain struct {
	Chain  string   `json:"chain"`
	Layers []string `json:"layers,omitempty"`
	Snap   string   `json:"snap"`
}

// record is one journal line. T selects which of the payload fields is
// live: "step", "tag", "untag" (the name alone) or "chain".
type record struct {
	T     string `json:"t"`
	Stp   *Step  `json:"step,omitempty"`
	Tag   *Tag   `json:"tag,omitempty"`
	Untag string `json:"untag,omitempty"`
	Chn   *Chain `json:"chain_idx,omitempty"`
}

// Report summarises what open-time validation found and did.
type Report struct {
	BlobsChecked       int // blob files scanned and digest-verified
	BlobsQuarantined   int // corrupt blob files moved to quarantine/
	JournalLines       int // journal lines read
	JournalQuarantined int // torn or checksum-failing lines quarantined
	RecordsDropped     int // well-formed records dropped for missing blobs
}

// Quarantined reports whether validation found any damage at all.
func (r Report) Quarantined() bool {
	return r.BlobsQuarantined > 0 || r.JournalQuarantined > 0 || r.RecordsDropped > 0
}

// VerifyMode selects how much validation Open performs.
type VerifyMode int

const (
	// VerifyFull reads back and digest-verifies every blob file at open —
	// the fsck-style pass. Corruption is discovered (and quarantined)
	// before the first build step runs, at a cost of O(store bytes).
	VerifyFull VerifyMode = iota

	// VerifyLazy skips the per-blob read at open: blob presence is still
	// stat-checked against the journal (dangling records drop as usual),
	// but content verification is deferred to Blob's verify-on-read, so
	// opening costs O(journal lines) instead of O(store bytes). A corrupt
	// blob is discovered at first use, quarantined then, and costs one
	// re-execution of the affected steps — the same end state as
	// VerifyFull, discovered later.
	VerifyLazy
)

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	verify   VerifyMode
	lockWait time.Duration
	inj      Injector
}

// WithVerify selects the open-time validation mode (default VerifyFull).
func WithVerify(m VerifyMode) Option {
	return func(c *openConfig) { c.verify = m }
}

// WithLockWait bounds how long this handle's exclusive operations (GC,
// Reset, journal compaction) wait for the store lock before failing with
// ErrBusy (default DefaultLockWait; <= 0 tries once).
func WithLockWait(wait time.Duration) Option {
	return func(c *openConfig) { c.lockWait = wait }
}

// WithFailpoints installs a fault injector on the handle from the start
// (see Injector); SetFailpoints changes it later.
func WithFailpoints(inj Injector) Option {
	return func(c *openConfig) { c.inj = inj }
}

// Dir is an open content-addressed store rooted at a directory. All
// methods are safe for concurrent use by multiple goroutines sharing the
// one handle (the build pool's writers). Distinct processes coordinate
// through the store lock (shared while open, exclusive around GC, Reset
// and journal compaction — see storeLock), the append-only journal and
// write-once blobs, so appends from many processes interleave whole
// records and a maintenance rewrite never races any of them.
type Dir struct {
	root string

	mu       sync.Mutex
	lock     *storeLock
	lockWait time.Duration
	verify   VerifyMode
	journal  *os.File
	steps    map[string]Step
	tags     map[string]Tag
	chains   map[string]Chain
	order    map[string]uint64 // "s:<key>"/"c:<chain>" → journal recency
	orderSeq uint64
	tornTail bool // journal ends in an unterminated fragment
	report   Report
	seq      uint64 // temp-file uniquifier
	closed   bool

	// injMu guards inj separately from d.mu: failpoints fire inside
	// sections that already hold d.mu.
	injMu sync.Mutex
	inj   Injector
}

// Open opens (creating if absent) the store at root and validates it:
// every journal line is checksum-verified, every blob the surviving
// records reference is presence-checked, and — under the default
// WithVerify(VerifyFull) — every blob file is read back and
// digest-verified against its name. Anything corrupt is moved to
// quarantine/ while the records referencing it are dropped. The returned
// Report says what was found; damage is never an error — a damaged store
// is just a colder one. Opening fails only when root exists and is not a
// directory, the filesystem refuses the layout, or the store lock cannot
// be established.
//
// The handle holds the store lock shared until Close, so another
// process's GC/Reset/compaction waits for this handle (or fails with
// ErrBusy) instead of rewriting state underneath it.
func Open(root string, opts ...Option) (*Dir, Report, error) {
	cfg := openConfig{verify: VerifyFull, lockWait: DefaultLockWait}
	for _, o := range opts {
		o(&cfg)
	}
	if st, err := os.Stat(root); err == nil && !st.IsDir() {
		return nil, Report{}, fmt.Errorf("cas: %s: not a directory", root)
	}
	for _, sub := range []string{"", "blobs/sha256", "quarantine", "tmp"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, Report{}, fmt.Errorf("cas: %w", err)
		}
	}
	d := &Dir{
		root:     root,
		lockWait: cfg.lockWait,
		verify:   cfg.verify,
		steps:    map[string]Step{},
		tags:     map[string]Tag{},
		chains:   map[string]Chain{},
		order:    map[string]uint64{},
		inj:      cfg.inj,
	}
	lk, err := openLock(d.path("lock"))
	if err != nil {
		return nil, Report{}, err
	}
	d.lock = lk
	fail := func(err error) (*Dir, Report, error) {
		lk.close()
		return nil, d.report, err
	}
	// Stranded temp files are crash litter from interrupted blob writes;
	// nothing references them (a rename never happened), so clear them.
	// Only under an uncontended exclusive lock, though: with the store
	// open elsewhere, a temp file may be another process's in-flight blob
	// write, and deleting it would fail that write's rename.
	//chlint:allow ctxfirst -- open-time cleanup; Open has no caller context and the try is non-blocking
	if d.lock.exclusive(context.Background(), 0) == nil {
		if tmps, err := os.ReadDir(d.path("tmp")); err == nil {
			for _, t := range tmps {
				os.Remove(filepath.Join(d.path("tmp"), t.Name()))
			}
		}
		if err := d.lock.shared(); err != nil {
			return fail(err)
		}
	}
	if d.verify == VerifyFull {
		d.fsckBlobsLocked()
	}
	if err := d.loadJournalLocked(); err != nil {
		return fail(err)
	}
	d.dropDanglingRecordsLocked()
	if d.report.JournalQuarantined > 0 || d.report.RecordsDropped > 0 {
		// The journal holds damage: a torn tail fragment (which a plain
		// O_APPEND write would merge with, corrupting the next record) or
		// records we just dropped (which would be re-parsed, re-dropped
		// and re-warned about at every open). Rewrite it to exactly the
		// surviving records — atomically, like GC's compaction, under the
		// exclusive lock so no concurrent append lands between our read
		// of the journal and the rename that replaces it.
		//chlint:allow ctxfirst -- open-time torn-tail repair; Open has no caller context, wait is bounded by lockWait
		switch err := d.lock.exclusive(context.Background(), d.lockWait); {
		case err == nil:
			// Appends may have landed while we waited for the lock;
			// recompute the surviving set from the current journal.
			if err := d.reloadJournalLocked(); err != nil {
				return fail(err)
			}
			if err := d.writeCompactJournalLocked(); err != nil {
				return fail(err)
			}
			if err := d.lock.shared(); err != nil {
				d.journal.Close()
				return fail(err)
			}
			return d, d.report, nil
		case errors.Is(err, ErrBusy):
			// Peers hold the store open; compaction must wait for a later
			// open. Degrade: terminate any torn tail with a bare newline so
			// O_APPEND writes cannot merge with the fragment (the fragment
			// becomes a standalone bad line, quarantined again next open),
			// and keep the dropped records dropped in memory.
			if d.tornTail {
				if err := d.terminateTornTailLocked(); err != nil {
					return fail(err)
				}
			}
		default:
			return fail(err)
		}
	}
	f, err := os.OpenFile(d.path("journal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("cas: journal: %w", err))
	}
	d.journal = f
	return d, d.report, nil
}

// terminateTornTailLocked appends a single newline to the journal so the
// unterminated fragment at EOF becomes a standalone (checksum-failing)
// line instead of merging with the next append. The degraded-open path:
// used only when damage was found but the exclusive lock for a real
// compaction is unavailable.
//
//chlint:allow failpointcover -- open-time torn-tail repair runs before the store serves builds; the soak faults the append path instead
func (d *Dir) terminateTornTailLocked() error {
	f, err := os.OpenFile(d.path("journal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cas: journal: %w", err)
	}
	_, werr := f.WriteString("\n")
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("cas: journal: %w", werr)
	}
	d.tornTail = false
	return nil
}

// reloadJournalLocked discards the in-memory record state and replays the
// journal from disk — the step that makes compaction safe after waiting
// for the exclusive lock, during which other processes may have appended
// or compacted. Callers hold the exclusive store lock.
func (d *Dir) reloadJournalLocked() error {
	d.steps = map[string]Step{}
	d.tags = map[string]Tag{}
	d.chains = map[string]Chain{}
	d.order = map[string]uint64{}
	d.orderSeq = 0
	d.tornTail = false
	d.report.JournalLines = 0
	d.report.JournalQuarantined = 0
	d.report.RecordsDropped = 0
	if err := d.loadJournalLocked(); err != nil {
		return err
	}
	d.dropDanglingRecordsLocked()
	return nil
}

// Root returns the directory the store lives in.
func (d *Dir) Root() string { return d.root }

// Report returns what open-time validation found.
func (d *Dir) Report() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.report
}

// Close releases the journal handle and the store lock (letting another
// process's pending GC/Reset proceed). Further writes fail; reads of
// already-loaded state keep working.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.journal.Close()
	if lerr := d.lock.close(); err == nil {
		err = lerr
	}
	return err
}

func (d *Dir) path(parts ...string) string {
	return filepath.Join(append([]string{d.root}, parts...)...)
}

// blobPath maps a digest to its sharded file path.
func (d *Dir) blobPath(digest string) (string, error) {
	hexpart, ok := strings.CutPrefix(digest, DigestPrefix)
	if !ok || len(hexpart) != 64 {
		return "", fmt.Errorf("cas: malformed digest %q", digest)
	}
	if _, err := hex.DecodeString(hexpart); err != nil {
		return "", fmt.Errorf("cas: malformed digest %q", digest)
	}
	return d.path("blobs", "sha256", hexpart[:2], hexpart[2:]), nil
}

// walkBlobs visits every file in the sharded blob directory — the one
// traversal fsck, stats and GC all share, so a layout change lands in one
// place.
func (d *Dir) walkBlobs(visit func(digest, path string, ent os.DirEntry)) {
	shards, err := os.ReadDir(d.path("blobs", "sha256"))
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(d.path("blobs", "sha256", shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			visit(DigestPrefix+shard.Name()+f.Name(),
				d.path("blobs", "sha256", shard.Name(), f.Name()), f)
		}
	}
}

// fsckBlobsLocked digest-verifies every blob file against its name and
// quarantines mismatches (truncated writes, flipped bits, renamed files).
//
//chlint:allow failpointcover -- open-time verification; a read failure here already quarantines, the soak faults OpBlobRead on the serving path
func (d *Dir) fsckBlobsLocked() {
	d.walkBlobs(func(digest, p string, _ os.DirEntry) {
		d.report.BlobsChecked++
		data, err := os.ReadFile(p)
		if err != nil {
			// Unreadable is not the same as corrupt: a transient
			// EMFILE/EIO must not destroy a healthy blob. Leave it;
			// Blob() digest-verifies again at use time.
			return
		}
		if Sum(data) == digest {
			return
		}
		d.quarantine(p, "blob-"+strings.TrimPrefix(digest, DigestPrefix))
		d.report.BlobsQuarantined++
	})
}

// quarantine moves a damaged file aside, preserving it for post-mortems
// instead of deleting evidence. A rename collision appends a sequence
// number; a failed rename falls back to removal so the bad bytes cannot
// be re-read as valid next open.
//
//chlint:allow failpointcover -- damage-disposal path; quarantine is the response to an (injected or real) fault, not a faultable step
func (d *Dir) quarantine(p, as string) {
	mQuarantines.Inc()
	dst := d.path("quarantine", as)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = d.path("quarantine", fmt.Sprintf("%s.%d", as, i))
	}
	if os.Rename(p, dst) != nil {
		os.Remove(p)
	}
}

// loadJournalLocked replays the journal into the in-memory maps. Each line is
// "<sha256-hex-of-payload> <payload-json>"; lines that fail the checksum
// (torn tail, bit rot) are appended to quarantine/journal.bad and skipped.
//
//chlint:allow failpointcover -- open-time journal replay; recovery behavior under partial reads is exercised by the torn-tail corpus, not failpoints
func (d *Dir) loadJournalLocked() error {
	data, err := os.ReadFile(d.path("journal"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cas: journal: %w", err)
	}
	var bad []string
	lines := strings.Split(string(data), "\n")
	// A journal not ending in '\n' has a torn final line; Split leaves the
	// fragment (or "") as the last element, and the checksum rejects it.
	// Remember the tear: the degraded-open path (compaction lock busy)
	// must terminate it before any O_APPEND write can merge with it.
	d.tornTail = len(data) > 0 && data[len(data)-1] != '\n'
	for _, line := range lines {
		if line == "" {
			continue
		}
		d.report.JournalLines++
		rec, ok := decodeLine(line)
		if !ok {
			bad = append(bad, line)
			d.report.JournalQuarantined++
			continue
		}
		d.applyLocked(rec)
	}
	if len(bad) > 0 {
		f, err := os.OpenFile(d.path("quarantine", "journal.bad"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			fmt.Fprintln(f, strings.Join(bad, "\n"))
			f.Close()
		}
	}
	return nil
}

// decodeLine parses and checksum-verifies one journal line.
func decodeLine(line string) (record, bool) {
	sum, payload, ok := strings.Cut(line, " ")
	if !ok || len(sum) != 64 {
		return record{}, false
	}
	h := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(h[:]) != sum {
		return record{}, false
	}
	var rec record
	if json.Unmarshal([]byte(payload), &rec) != nil {
		return record{}, false
	}
	return rec, true
}

// applyLocked folds one validated record into the in-memory state. Later records
// win, so re-recording a step or re-tagging a name behaves like a map
// write, and "untag" deletes. Steps and chains also record their journal
// position (most recent record wins there too): the recency order the
// size-budgeted GC evicts by, preserved across compactions because
// writeCompactJournalLocked emits records in this order.
func (d *Dir) applyLocked(rec record) {
	switch rec.T {
	case "step":
		if rec.Stp != nil {
			d.steps[rec.Stp.Key] = *rec.Stp
			d.orderSeq++
			d.order["s:"+rec.Stp.Key] = d.orderSeq
		}
	case "tag":
		if rec.Tag != nil {
			d.tags[rec.Tag.Name] = *rec.Tag
		}
	case "untag":
		delete(d.tags, rec.Untag)
	case "chain":
		if rec.Chn != nil {
			d.chains[rec.Chn.Chain] = *rec.Chn
			d.orderSeq++
			d.order["c:"+rec.Chn.Chain] = d.orderSeq
		}
	}
	// Unknown record types are ignored: an older binary opening a newer
	// store must degrade to a colder cache, not a failed build.
}

// dropDanglingRecordsLocked removes records whose blobs did not survive
// validation: a step whose layer is gone cannot replay, a tag whose layer
// is gone cannot load, a chain whose snapshot is gone cannot rehydrate.
// When anything is dropped, Open compacts the journal immediately, so the
// damage is reported once, not at every subsequent open.
func (d *Dir) dropDanglingRecordsLocked() {
	for key, st := range d.steps {
		if st.Layer != "" && !d.hasBlobLocked(st.Layer) {
			delete(d.steps, key)
			d.report.RecordsDropped++
		}
	}
	for name, tg := range d.tags {
		for _, l := range tg.Layers {
			if !d.hasBlobLocked(l) {
				delete(d.tags, name)
				d.report.RecordsDropped++
				break
			}
		}
	}
	for key, ch := range d.chains {
		ok := d.hasBlobLocked(ch.Snap)
		for _, l := range ch.Layers {
			ok = ok && d.hasBlobLocked(l)
		}
		if !ok {
			delete(d.chains, key)
			d.report.RecordsDropped++
		}
	}
}

func (d *Dir) hasBlobLocked(digest string) bool {
	p, err := d.blobPath(digest)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// append writes one checksummed record line to the journal and mirrors it
// into the in-memory state. Callers hold d.mu.
//
// Before writing it checks that the handle still names DIR/journal. A
// cooperating process cannot replace the file while we hold the shared
// store lock (compaction requires the exclusive lock), but a legacy or
// external writer still can; appending to the unlinked inode would
// "succeed" invisibly, so an orphaned handle first rewrites the journal
// from its own in-memory state — a superset of everything it ever
// appended — under the exclusive lock, and then appends to the fresh
// file. (Records the *other* writer added that this one never loaded are
// its to re-append.)
func (d *Dir) appendLocked(ctx context.Context, rec record) error {
	if d.closed {
		return fmt.Errorf("cas: store is closed")
	}
	if err := d.failpoint(OpJournalAppend); err != nil {
		return fmt.Errorf("cas: journal: %w", err)
	}
	orphaned, err := d.journalOrphanedLocked()
	if err != nil {
		return err
	}
	if orphaned {
		// The detect→rewrite window itself must not race another writer:
		// hold the exclusive lock across the compaction.
		if err := d.lock.exclusive(ctx, d.lockWait); err != nil {
			return err
		}
		err := d.writeCompactJournalLocked()
		if serr := d.lock.shared(); err == nil {
			err = serr
		}
		if err != nil {
			return err
		}
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	h := sha256.Sum256(payload)
	line := hex.EncodeToString(h[:]) + " " + string(payload) + "\n"
	// One write call per line: O_APPEND appends are atomic for writes of
	// this size, so concurrent handles interleave whole lines.
	if _, err := d.journal.WriteString(line); err != nil {
		return fmt.Errorf("cas: journal: %w", err)
	}
	mJournalAppends.Inc()
	d.applyLocked(rec)
	return nil
}

// journalOrphanedLocked reports whether the open journal handle no longer
// backs DIR/journal. A failed stat of our own handle is surfaced, not
// swallowed: guessing "not orphaned" would let the next append land on a
// possibly-unlinked inode, which is exactly the silent loss this check
// exists to prevent. Callers hold d.mu.
func (d *Dir) journalOrphanedLocked() (bool, error) {
	fi, err := d.journal.Stat()
	if err != nil {
		return false, fmt.Errorf("cas: journal: %w", err)
	}
	pi, err := os.Stat(d.path("journal"))
	if err != nil {
		return true, nil // the file is gone entirely
	}
	return !os.SameFile(fi, pi), nil
}

// PutBlob stores data under its digest and returns the digest. Blobs are
// write-once: re-putting existing content is a cheap no-op, and the write
// itself goes to a private temp file renamed into place, so no reader can
// observe a partial blob. The whole operation runs under the Dir lock,
// which is what makes it atomic with respect to a concurrent GC sweep.
func (d *Dir) PutBlob(ctx context.Context, data []byte) (string, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.putBlobLocked(data)
}

// putBlobLocked is PutBlob with d.mu held — the form PutStep and PutChain
// use so their blob write and journal append are one critical section: a
// GC running between the two would otherwise sweep the not-yet-referenced
// blob and leave the record dangling.
func (d *Dir) putBlobLocked(data []byte) (string, error) {
	digest := Sum(data)
	p, err := d.blobPath(digest)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(p); err == nil {
		return digest, nil
	}
	t0 := time.Now()
	d.seq++
	tmp := d.path("tmp", fmt.Sprintf("blob-%d-%s", d.seq, digest[len(digest)-12:]))
	if err := d.failpoint(OpBlobWrite); err != nil {
		// A torn-write fault leaves the partial temp behind — never renamed
		// into place, so it is litter for the next open's tmp sweep, not a
		// reachable blob.
		var torn *TornWrite
		if errors.As(err, &torn) {
			keep := torn.Keep
			if keep > len(data) {
				keep = len(data)
			}
			os.WriteFile(tmp, data[:keep], 0o644)
		}
		return "", fmt.Errorf("cas: blob %s: %w", digest, err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("cas: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("cas: %w", err)
	}
	if err := d.failpoint(OpBlobRename); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("cas: blob %s: %w", digest, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("cas: %w", err)
	}
	mBlobWriteBytes.Add(uint64(len(data)))
	mBlobWriteSeconds.ObserveSince(t0)
	return digest, nil
}

// Blob reads a blob back, digest-verifying it on the way out. Content that
// no longer matches its name (bit rot since open, or tampering) is
// quarantined and reported as an error — callers treat it as a cache miss.
func (d *Dir) Blob(ctx context.Context, digest string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	p, err := d.blobPath(digest)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	// An injected read fault reports as-is, before the real read: the blob
	// on disk is healthy, so quarantining it would turn a simulated
	// transient error into real data loss.
	if err := d.failpoint(OpBlobRead); err != nil {
		return nil, fmt.Errorf("cas: blob %s: %w", digest, err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if !os.IsNotExist(err) {
			// Present but unserveable (EACCES, EIO, wrong file type):
			// move it aside so a later re-put of the known-good bytes can
			// heal the store instead of stat-hitting the broken file
			// forever. The bytes are preserved in quarantine, not lost.
			d.mu.Lock()
			d.quarantine(p, "blob-"+strings.TrimPrefix(digest, DigestPrefix))
			d.report.BlobsQuarantined++
			d.mu.Unlock()
		}
		return nil, fmt.Errorf("cas: blob %s: %w", digest, err)
	}
	if Sum(data) != digest {
		d.mu.Lock()
		d.quarantine(p, "blob-"+strings.TrimPrefix(digest, DigestPrefix))
		d.report.BlobsQuarantined++
		d.mu.Unlock()
		return nil, fmt.Errorf("cas: blob %s: content does not match digest", digest)
	}
	mBlobReadBytes.Add(uint64(len(data)))
	mBlobReadSeconds.ObserveSince(t0)
	return data, nil
}

// HasBlob reports blob presence without reading it.
func (d *Dir) HasBlob(digest string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hasBlobLocked(digest)
}

// PutStep persists one instruction-cache entry: the layer bytes (nil for a
// step that changed nothing) go to the blob store, the key and metadata to
// the journal.
func (d *Dir) PutStep(ctx context.Context, key string, layer []byte, modified int) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Step{Key: key, Modified: modified}
	if layer != nil {
		digest, err := d.putBlobLocked(layer)
		if err != nil {
			return err
		}
		st.Layer = digest
	}
	if cur, ok := d.steps[key]; ok && cur == st {
		return nil // identical re-record: the journal must not grow per run
	}
	return d.appendLocked(ctx, record{T: "step", Stp: &st})
}

// Step looks up a persisted instruction-cache entry by key.
func (d *Dir) Step(key string) (Step, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.steps[key]
	return st, ok
}

// Steps returns every persisted instruction-cache entry (copied; callers
// own the slice).
func (d *Dir) Steps() []Step {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Step, 0, len(d.steps))
	for _, st := range d.steps {
		out = append(out, st)
	}
	return out
}

// PutTag persists an image tag. The layer blobs must already be in the
// store (image.Store.Put writes them first); a tag referencing a missing
// blob is rejected rather than recorded dangling.
func (d *Dir) PutTag(ctx context.Context, name string, layers []string, config []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range layers {
		if !d.hasBlobLocked(l) {
			return fmt.Errorf("cas: tag %s: layer %s not in store", name, l)
		}
	}
	tg := Tag{Name: name, Layers: append([]string(nil), layers...), Config: config}
	if cur, ok := d.tags[name]; ok && sameTag(cur, tg) {
		// Re-seeding the same base images every invocation must not grow
		// the append-only journal by one identical line per run.
		return nil
	}
	return d.appendLocked(ctx, record{T: "tag", Tag: &tg})
}

// sameTag reports whether two tag records serialise identically.
func sameTag(a, b Tag) bool {
	if a.Name != b.Name || len(a.Layers) != len(b.Layers) || string(a.Config) != string(b.Config) {
		return false
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			return false
		}
	}
	return true
}

// Tag looks up a persisted tag.
func (d *Dir) Tag(name string) (Tag, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tg, ok := d.tags[name]
	return tg, ok
}

// DeleteTag removes a tag (journalled as an "untag" record; blobs stay
// until GC). Deleting an absent tag is a no-op.
func (d *Dir) DeleteTag(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tags[name]; !ok {
		return nil
	}
	return d.appendLocked(ctx, record{T: "untag", Untag: name})
}

// TagNames lists persisted tags, sorted.
func (d *Dir) TagNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.tags))
	for n := range d.tags {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutChain persists a flatten-chain index: the packed whole-tree snapshot
// goes to the blob store, the chain digest and member layers to the
// journal. A warm process unpacks the snapshot instead of re-flattening
// the member layers one by one.
func (d *Dir) PutChain(ctx context.Context, chain string, layers []string, snapshot []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	digest, err := d.putBlobLocked(snapshot)
	if err != nil {
		return err
	}
	if cur, ok := d.chains[chain]; ok && cur.Snap == digest {
		return nil // identical re-record (see PutTag)
	}
	return d.appendLocked(ctx, record{T: "chain", Chn: &Chain{
		Chain: chain, Layers: append([]string(nil), layers...), Snap: digest,
	}})
}

// Chain looks up a persisted flatten-chain index.
func (d *Dir) Chain(chain string) (Chain, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch, ok := d.chains[chain]
	return ch, ok
}

// Chains reports how many flatten-chain indexes are persisted.
func (d *Dir) Chains() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chains)
}

// BlobStats walks the blob directory and reports file count and total
// bytes — `cache ls` bookkeeping, not a hot path.
func (d *Dir) BlobStats() (count int, bytes int64) {
	d.walkBlobs(func(_, _ string, ent os.DirEntry) {
		if info, err := ent.Info(); err == nil {
			count++
			bytes += info.Size()
		}
	})
	return count, bytes
}

// Reset wipes the store back to empty: blobs, journal, quarantine. It
// requires the exclusive store lock (the lock file itself survives the
// wipe), failing with ErrBusy while another process has the store open.
func (d *Dir) Reset(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.failpoint(OpLock); err != nil {
		return fmt.Errorf("cas: reset: %w", err)
	}
	if err := d.lock.exclusive(ctx, d.lockWait); err != nil {
		return err
	}
	defer d.lock.shared()
	if err := d.journal.Close(); err != nil && !d.closed {
		return fmt.Errorf("cas: %w", err)
	}
	for _, sub := range []string{"blobs", "journal", "quarantine", "tmp"} {
		if err := os.RemoveAll(d.path(sub)); err != nil {
			return fmt.Errorf("cas: %w", err)
		}
	}
	for _, sub := range []string{"blobs/sha256", "quarantine", "tmp"} {
		if err := os.MkdirAll(d.path(sub), 0o755); err != nil {
			return fmt.Errorf("cas: %w", err)
		}
	}
	f, err := os.OpenFile(d.path("journal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cas: journal: %w", err)
	}
	d.journal = f
	d.closed = false
	d.steps = map[string]Step{}
	d.tags = map[string]Tag{}
	d.chains = map[string]Chain{}
	d.order = map[string]uint64{}
	d.orderSeq = 0
	d.tornTail = false
	d.report = Report{}
	return nil
}

// writeCompactJournalLocked atomically replaces the journal with exactly the
// surviving records (GC's compaction step). Tags come first (the pins),
// then steps and chains in their recorded order — so replaying the
// compacted journal reconstructs the same recency ranking the budgeted
// GC evicts by. Callers hold d.mu and, when other handles may exist, the
// exclusive store lock.
//
//chlint:allow failpointcover -- compaction runs under the exclusive store lock with builds locked out; crash safety comes from the atomic rename
func (d *Dir) writeCompactJournalLocked() error {
	d.seq++
	tmp := d.path("tmp", fmt.Sprintf("journal-%d", d.seq))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	w := bufio.NewWriter(f)
	writeRec := func(rec record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		h := sha256.Sum256(payload)
		_, err = fmt.Fprintf(w, "%s %s\n", hex.EncodeToString(h[:]), payload)
		return err
	}
	var werr error
	for _, name := range sortedKeys(d.tags) {
		tg := d.tags[name]
		werr = firstErr(werr, writeRec(record{T: "tag", Tag: &tg}))
	}
	type orderedRec struct {
		seq uint64
		rec record
	}
	ordered := make([]orderedRec, 0, len(d.steps)+len(d.chains))
	for _, key := range sortedKeys(d.steps) {
		st := d.steps[key]
		ordered = append(ordered, orderedRec{d.order["s:"+key], record{T: "step", Stp: &st}})
	}
	for _, key := range sortedKeys(d.chains) {
		ch := d.chains[key]
		ordered = append(ordered, orderedRec{d.order["c:"+key], record{T: "chain", Chn: &ch}})
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, o := range ordered {
		werr = firstErr(werr, writeRec(o.rec))
	}
	werr = firstErr(werr, w.Flush(), f.Close())
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: compact journal: %w", werr)
	}
	if err := os.Rename(tmp, d.path("journal")); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: compact journal: %w", err)
	}
	// Reopen the append handle on the new file: the old one points at the
	// unlinked inode. If the reopen fails the store must close, not limp:
	// appends to the unlinked handle would "succeed" into a file nothing
	// will ever read back.
	old := d.journal
	nf, err := os.OpenFile(d.path("journal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		old.Close()
		d.closed = true
		return fmt.Errorf("cas: compact journal: %w", err)
	}
	d.journal = nf
	old.Close()
	d.tornTail = false
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ctxErr reports a done context as a package-prefixed error, nil otherwise
// — the boundary check every context-taking method starts with.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	return nil
}
