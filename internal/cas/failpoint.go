package cas

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"syscall"
)

// Failpoints are the store's deterministic fault-injection seam: every
// operation that touches the backing filesystem consults the handle's
// Injector (if any) immediately BEFORE performing the real I/O, and treats
// a non-nil error exactly as it would treat the real thing. Injected
// faults therefore never corrupt on-disk state — the strongest invariant
// the fault soak asserts is that a store subjected to faults at every
// failpoint still reopens reporting zero damage. The one deliberate
// exception is TornWrite, which leaves a partial blob temp file behind
// (never renamed into place), modelling a crash mid-write; open-time tmp
// cleanup handles it like any other stranded temp.

// Op names one failpoint.
type Op string

const (
	// OpBlobWrite fires before a new blob's temp file is written.
	OpBlobWrite Op = "blob-write"
	// OpBlobRename fires before a written temp file is renamed into place.
	OpBlobRename Op = "blob-rename"
	// OpBlobRead fires before a blob is read back; an injected error is
	// reported as-is and never quarantines the (healthy) blob.
	OpBlobRead Op = "blob-read"
	// OpJournalAppend fires before a record line is appended.
	OpJournalAppend Op = "journal-append"
	// OpLock fires before GC/Reset convert the store lock to exclusive;
	// injectors conventionally return ErrBusy here.
	OpLock Op = "lock"
)

// AllOps lists every failpoint, for harnesses that fault everything.
var AllOps = []Op{OpBlobWrite, OpBlobRename, OpBlobRead, OpJournalAppend, OpLock}

// Injector decides, per failpoint firing, whether the operation fails.
// A nil return lets the real I/O proceed. Implementations must be safe
// for concurrent use.
type Injector interface {
	Fail(op Op) error
}

// SetFailpoints installs (or, with nil, removes) the handle's injector.
func (d *Dir) SetFailpoints(inj Injector) {
	d.injMu.Lock()
	d.inj = inj
	d.injMu.Unlock()
}

// failpoint consults the installed injector for one firing.
func (d *Dir) failpoint(op Op) error {
	d.injMu.Lock()
	inj := d.inj
	d.injMu.Unlock()
	if inj == nil {
		return nil
	}
	return inj.Fail(op)
}

// TornWrite is an injectable blob-write error that additionally leaves a
// truncated temp file behind (Keep bytes of the intended content),
// simulating a crash or ENOSPC partway through the write. The temp file is
// never renamed into place, so it is litter, not damage: the next Open
// clears it.
type TornWrite struct {
	Keep int
	Err  error // optional underlying cause; nil means a generic write error
}

func (t *TornWrite) Error() string {
	if t.Err != nil {
		return fmt.Sprintf("torn write (%d bytes): %v", t.Keep, t.Err)
	}
	return fmt.Sprintf("torn write (%d bytes)", t.Keep)
}

func (t *TornWrite) Unwrap() error { return t.Err }

// failOps is the always-fail injector behind FailOps and ParseFaults.
type failOps struct {
	err error
	ops map[Op]bool
}

func (f *failOps) Fail(op Op) error {
	if f.ops[op] {
		return f.err
	}
	return nil
}

// FailOps returns an injector that fails every firing of the listed ops
// with err, and passes every other op through.
func FailOps(err error, ops ...Op) Injector {
	m := make(map[Op]bool, len(ops))
	for _, op := range ops {
		m[op] = true
	}
	return &failOps{err: err, ops: m}
}

// ScriptStep is one consumable entry of a Script.
type ScriptStep struct {
	Op  Op
	Err error
	N   int // fire for the next N matching calls; 0 means once
}

// Script fails failpoint firings according to an ordered, consumable list:
// each firing of op consumes the first unexhausted step for that op, and
// once every step for an op is spent further firings pass. Deterministic
// by construction — the "fail once, then heal" tests are built on it.
type Script struct {
	mu    sync.Mutex
	steps []ScriptStep
}

// NewScript builds a Script; steps with N == 0 fire once.
func NewScript(steps ...ScriptStep) *Script {
	s := &Script{steps: make([]ScriptStep, len(steps))}
	copy(s.steps, steps)
	for i := range s.steps {
		if s.steps[i].N == 0 {
			s.steps[i].N = 1
		}
	}
	return s
}

func (s *Script) Fail(op Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.steps {
		if s.steps[i].Op != op || s.steps[i].N <= 0 {
			continue
		}
		s.steps[i].N--
		return s.steps[i].Err
	}
	return nil
}

// Plan is the seeded probabilistic injector behind the fault soak: each op
// fires with its configured probability, and the error flavor (transient
// vs permanent, torn write, ENOSPC, ErrBusy) is drawn from the same seeded
// stream, so a soak run is fully reproducible from its seed.
type Plan struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate map[Op]float64
}

// NewPlan builds a Plan from a seed and per-op firing probabilities; ops
// absent from rate never fire.
func NewPlan(seed int64, rate map[Op]float64) *Plan {
	r := make(map[Op]float64, len(rate))
	for op, p := range rate {
		r[op] = p
	}
	return &Plan{rng: rand.New(rand.NewSource(seed)), rate: r}
}

func (p *Plan) Fail(op Op) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	prob, ok := p.rate[op]
	if !ok || prob <= 0 || p.rng.Float64() >= prob {
		return nil
	}
	switch op {
	case OpLock:
		return fmt.Errorf("injected: %w", ErrBusy)
	case OpBlobWrite:
		switch p.rng.Intn(3) {
		case 0:
			return &TornWrite{Keep: p.rng.Intn(64)}
		case 1:
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		default:
			return MarkTransient(fmt.Errorf("injected transient blob-write error"))
		}
	case OpBlobRename, OpBlobRead, OpJournalAppend:
		if p.rng.Intn(2) == 0 {
			return MarkTransient(fmt.Errorf("injected transient %s error", op))
		}
		return fmt.Errorf("injected %s error", op)
	}
	return fmt.Errorf("injected %s error", op)
}

// ParseFaults parses the CH_IMAGE_CAS_FAULTS specification: a
// comma-separated list of op names, each optionally suffixed ":transient"
// to make the injected error retryable. Every listed op fails on every
// firing — the deterministic shape the CLI degraded-contract test needs.
func ParseFaults(spec string) (Injector, error) {
	known := make(map[Op]bool, len(AllOps))
	for _, op := range AllOps {
		known[op] = true
	}
	perm := make([]Op, 0, len(AllOps))
	trans := make([]Op, 0, len(AllOps))
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, transient := field, false
		if rest, ok := strings.CutSuffix(field, ":transient"); ok {
			name, transient = rest, true
		}
		op := Op(name)
		if !known[op] {
			return nil, fmt.Errorf("cas: unknown failpoint %q", name)
		}
		if transient {
			trans = append(trans, op)
		} else {
			perm = append(perm, op)
		}
	}
	if len(perm)+len(trans) == 0 {
		return nil, fmt.Errorf("cas: empty fault specification")
	}
	injs := make(multiInjector, 0, 2)
	if len(perm) > 0 {
		injs = append(injs, FailOps(fmt.Errorf("injected fault"), perm...))
	}
	if len(trans) > 0 {
		injs = append(injs, FailOps(MarkTransient(fmt.Errorf("injected transient fault")), trans...))
	}
	return injs, nil
}

// multiInjector consults injectors in order; the first error wins.
type multiInjector []Injector

func (m multiInjector) Fail(op Op) error {
	for _, inj := range m {
		if err := inj.Fail(op); err != nil {
			return err
		}
	}
	return nil
}
