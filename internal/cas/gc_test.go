package cas

import (
	"os"
	"path/filepath"
	"testing"
)

// GC keeps a blob while ANY tag references it: dropping one of two tags
// sharing a layer must not sweep the layer.
func TestGCBlobSharedByTwoTagsSurvives(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	shared, _ := d.PutBlob(ctx, []byte("shared layer"))
	only, _ := d.PutBlob(ctx, []byte("private layer"))
	if err := d.PutTag(ctx, "a:1", []string{shared}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.PutTag(ctx, "b:1", []string{shared, only}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteTag(ctx, "b:1"); err != nil {
		t.Fatal(err)
	}
	stats, err := d.GC(ctx, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasBlob(shared) {
		t.Fatal("blob still referenced by a:1 was swept")
	}
	if d.HasBlob(only) {
		t.Fatal("blob referenced only by the deleted tag survived")
	}
	if stats.BlobsSwept != 1 || stats.BlobsKept != 1 || stats.TagsKept != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// Untagged intermediate-stage blobs — step layers and flatten chains no
// tagged image retains — are collected; everything a tag reaches stays.
func TestGCCollectsUntaggedIntermediates(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	final := []byte("final layer")
	inter := []byte("intermediate stage layer")
	fd, _ := d.PutBlob(ctx, final)
	if err := d.PutTag(ctx, "app:1", []string{fd}, nil); err != nil {
		t.Fatal(err)
	}
	// A step of the tagged image and a step of a pruned intermediate.
	if err := d.PutStep(ctx, "final-step", final, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "inter-step", inter, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "no-layer-step", nil, 1); err != nil {
		t.Fatal(err)
	}
	// Chains for the tagged image and for the intermediate stage.
	if err := d.PutChain(ctx, "sha256:tagged", []string{fd}, []byte("tagged snap")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutChain(ctx, "sha256:inter", []string{Sum(inter)}, []byte("inter snap")); err != nil {
		t.Fatal(err)
	}

	stats, err := d.GC(ctx, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StepsDropped != 1 || stats.ChainsDropped != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, ok := d.Step("final-step"); !ok {
		t.Fatal("tagged image's step dropped")
	}
	if _, ok := d.Step("no-layer-step"); !ok {
		t.Fatal("empty-layer step dropped")
	}
	if _, ok := d.Step("inter-step"); ok {
		t.Fatal("intermediate step survived")
	}
	if _, ok := d.Chain("sha256:tagged"); !ok {
		t.Fatal("tagged chain dropped")
	}
	if _, ok := d.Chain("sha256:inter"); ok {
		t.Fatal("intermediate chain survived")
	}
	if d.HasBlob(Sum(inter)) || d.HasBlob(Sum([]byte("inter snap"))) {
		t.Fatal("intermediate blobs survived")
	}
	if !d.HasBlob(fd) || !d.HasBlob(Sum([]byte("tagged snap"))) {
		t.Fatal("tagged blobs swept")
	}
	d.Close()

	// GC compacts the journal: the reopened store holds exactly the
	// survivors and reports no damage (dropped records are gone for good,
	// not re-dropped every open).
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("post-GC store reports damage: %+v", rep)
	}
	if _, ok := d2.Step("inter-step"); ok {
		t.Fatal("dropped step resurrected by reopen")
	}
	if _, ok := d2.Step("final-step"); !ok {
		t.Fatal("surviving step lost on reopen")
	}
}

// GC on an empty (or never-used) store is a no-op, not an error.
func TestGCEmptyStoreNoOp(t *testing.T) {
	root := filepath.Join(t.TempDir(), "never-existed")
	d, _ := openT(t, root) // Open creates the layout
	stats, err := d.GC(ctx, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != (GCStats{}) {
		t.Fatalf("stats on empty store: %+v", stats)
	}
	// Still usable afterwards.
	if _, err := d.PutBlob(ctx, []byte("post-gc")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "journal")); err != nil {
		t.Fatalf("journal after empty GC: %v", err)
	}
}

// With no tags at all, GC sweeps everything — the store degenerates to
// empty rather than leaking unreachable blobs forever.
func TestGCNoRootsSweepsAll(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	d.PutStep(ctx, "s", []byte("layer"), 0)
	d.PutChain(ctx, "sha256:c", []string{Sum([]byte("layer"))}, []byte("snap"))
	stats, err := d.GC(ctx, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsSwept != 2 || stats.BlobsKept != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if n, _ := d.BlobStats(); n != 0 {
		t.Fatalf("%d blobs left", n)
	}
}
