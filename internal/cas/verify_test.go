package cas

import (
	"os"
	"path/filepath"
	"testing"
)

// corruptBlobOnDisk flips the stored bytes of a blob without touching its
// name, simulating bit rot between invocations.
func corruptBlobOnDisk(t *testing.T, d *Dir, digest string) {
	t.Helper()
	p, err := d.blobPath(digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A kill between writeCompactJournalLocked's temp write and its rename strands
// a temp journal and leaves the real journal untouched. Reopen must heal:
// the litter is cleared, every record survives, and no damage is reported.
func TestCrashMidCompactionHeals(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "k1", []byte("layer-1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "k2", []byte("layer-2"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The stranded temp file: half a compacted journal, never renamed.
	// Its content is deliberately a torn prefix of valid-looking lines.
	journal, err := os.ReadFile(filepath.Join(root, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(root, "tmp", "journal-42")
	if err := os.WriteFile(tmp, journal[:len(journal)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("reopen after crash-mid-compaction reports damage: %+v", rep)
	}
	for _, key := range []string{"k1", "k2"} {
		if _, ok := d2.Step(key); !ok {
			t.Fatalf("step %q lost to a crash that never renamed", key)
		}
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stranded temp journal not cleared: %v", err)
	}
}

// Lazy open must not read blob contents: a corrupt blob goes unnoticed at
// open (no fsck pass), is caught by Blob's verify-on-read, and the next
// open drops the now-dangling record.
func TestLazyOpenDefersBlobVerification(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "good", []byte("good layer"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "bad", []byte("bad layer"), 0); err != nil {
		t.Fatal(err)
	}
	badStep, _ := d.Step("bad")
	corruptBlobOnDisk(t, d, badStep.Layer)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, _, err := Open(root, WithVerify(VerifyLazy))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rep := d2.Report()
	if rep.BlobsChecked != 0 || rep.BlobsQuarantined != 0 {
		t.Fatalf("lazy open ran the fsck pass: %+v", rep)
	}
	// The record is still there — lazy trades early detection for a
	// cheap open; presence was stat-checked, content was not.
	if _, ok := d2.Step("bad"); !ok {
		t.Fatal("lazy open dropped a record whose blob file exists")
	}
	// Verify-on-read is the backstop: the corrupt blob reads as an error
	// and is quarantined then.
	if _, err := d2.Blob(ctx, badStep.Layer); err == nil {
		t.Fatal("corrupt blob read back without error")
	}
	if d2.Report().BlobsQuarantined != 1 {
		t.Fatalf("corrupt blob not quarantined at read: %+v", d2.Report())
	}
	goodStep, _ := d2.Step("good")
	if data, err := d2.Blob(ctx, goodStep.Layer); err != nil || string(data) != "good layer" {
		t.Fatalf("good blob: %q %v", data, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Same end state as VerifyFull, discovered later: the next open sees
	// the quarantined blob missing and drops the dangling record.
	d3, _, err := Open(root, WithVerify(VerifyLazy))
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if _, ok := d3.Step("bad"); ok {
		t.Fatal("dangling record survived reopen")
	}
	if _, ok := d3.Step("good"); !ok {
		t.Fatal("healthy record lost")
	}
}

// Lazy open still drops records whose blob files are missing entirely —
// the stat-based pass is kept in both modes.
func TestLazyOpenDropsDanglingRecords(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "dangling", []byte("gone layer"), 0); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Step("dangling")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := d.blobPath(st.Layer)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(p); err != nil {
		t.Fatal(err)
	}

	d2, _, err := Open(root, WithVerify(VerifyLazy))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Step("dangling"); ok {
		t.Fatal("record referencing a missing blob survived lazy open")
	}
	if d2.Report().RecordsDropped != 1 {
		t.Fatalf("RecordsDropped = %d, want 1", d2.Report().RecordsDropped)
	}
}
