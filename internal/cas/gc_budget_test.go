package cas

import (
	"bytes"
	"fmt"
	"testing"
)

// putSizedStep records a step whose layer blob is exactly size bytes,
// unique per key so blobs do not deduplicate across steps.
func putSizedStep(t *testing.T, d *Dir, key string, size int) string {
	t.Helper()
	layer := append([]byte(key+":"), bytes.Repeat([]byte{'x'}, size-len(key)-1)...)
	if len(layer) != size {
		t.Fatalf("layer for %q is %d bytes, want %d", key, len(layer), size)
	}
	if err := d.PutStep(ctx, key, layer, 0); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Step(key)
	return st.Layer
}

// Budgeted GC evicts in journal order, oldest record first: with three
// 1 KiB steps and a 2 KiB budget, the first-recorded step goes and the
// two newer ones stay warm — even though none of them is tagged.
func TestGCBudgetEvictsOldestFirst(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	putSizedStep(t, d, "oldest", 1024)
	putSizedStep(t, d, "middle", 1024)
	putSizedStep(t, d, "newest", 1024)

	stats, err := d.GC(ctx, Budget{MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Step("oldest"); ok {
		t.Fatal("oldest step survived over budget")
	}
	for _, key := range []string{"middle", "newest"} {
		if _, ok := d.Step(key); !ok {
			t.Fatalf("step %q evicted though the budget fit it", key)
		}
	}
	if stats.BytesKept != 2048 || stats.StepsDropped != 1 || stats.BlobsSwept != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// Under budget, budgeted GC keeps everything — including untagged warm
// entries the reachability sweep would have collected. That is the point
// of the policy.
func TestGCBudgetKeepsUntaggedUnderBudget(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	putSizedStep(t, d, "untagged-warm", 512)
	stats, err := d.GC(ctx, Budget{MaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Step("untagged-warm"); !ok {
		t.Fatal("under-budget GC evicted a warm entry")
	}
	if stats.StepsDropped != 0 || stats.BlobsSwept != 0 || stats.BytesKept != 512 {
		t.Fatalf("stats: %+v", stats)
	}
}

// Tag layers are pins: a budget smaller than the pinned bytes evicts
// every unpinned entry but never touches what a tag reaches, and reports
// the overshoot via BytesKept instead of enforcing it.
func TestGCBudgetNeverEvictsTagPins(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	pinnedLayer := putSizedStep(t, d, "pinned-step", 2048)
	if err := d.PutTag(ctx, "app:1", []string{pinnedLayer}, nil); err != nil {
		t.Fatal(err)
	}
	putSizedStep(t, d, "loose-step", 1024)

	stats, err := d.GC(ctx, Budget{MaxBytes: 1}) // impossible budget
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasBlob(pinnedLayer) {
		t.Fatal("tag-pinned blob evicted")
	}
	if _, ok := d.Step("pinned-step"); !ok {
		t.Fatal("step whose layer a tag pins was evicted (frees nothing)")
	}
	if _, ok := d.Step("loose-step"); ok {
		t.Fatal("unpinned step survived an impossible budget")
	}
	if stats.BytesKept != 2048 || stats.TagsKept != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// A blob shared by two steps survives until both are evicted: reference
// counting, not per-victim deletion.
func TestGCBudgetSharedBlobRefcounted(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	shared := bytes.Repeat([]byte{'s'}, 1024)
	if err := d.PutStep(ctx, "first", shared, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutStep(ctx, "second", shared, 0); err != nil {
		t.Fatal(err)
	}
	putSizedStep(t, d, "third", 1024)
	digest := Sum(shared)

	// Budget forces one eviction: "first" goes, but "second" still holds
	// the shared blob.
	if _, err := d.GC(ctx, Budget{MaxBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if !d.HasBlob(digest) {
		t.Fatal("shared blob deleted while a surviving step references it")
	}
	if _, ok := d.Step("second"); !ok {
		t.Fatal("second sharer evicted prematurely")
	}

	// Now evict everything: the blob goes with its last reference.
	if _, err := d.GC(ctx, Budget{MaxBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if d.HasBlob(digest) {
		t.Fatal("shared blob survived eviction of all referencing steps")
	}
}

// Evicting a step must not delete a layer blob a surviving chain lists as
// a member — the chain would dangle and read as damage at the next open.
// The invariant under test: after any budgeted GC, a reopen reports a
// healthy store.
func TestGCBudgetChainMembersHoldReferences(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	layer := bytes.Repeat([]byte{'l'}, 1024)
	if err := d.PutStep(ctx, "old-step", layer, 0); err != nil {
		t.Fatal(err)
	}
	putSizedStep(t, d, "filler", 1024)
	// Recorded last, so both steps are older victims; the chain lists the
	// first step's layer as a member.
	if err := d.PutChain(ctx, "sha256:chain", []string{Sum(layer)}, bytes.Repeat([]byte{'n'}, 512)); err != nil {
		t.Fatal(err)
	}

	// Budget 1536: evicting old-step frees nothing (the chain holds its
	// layer), evicting filler frees 1024 → total 1536 = layer + snap.
	if _, err := d.GC(ctx, Budget{MaxBytes: 1536}); err != nil {
		t.Fatal(err)
	}
	if !d.HasBlob(Sum(layer)) {
		t.Fatal("chain member layer deleted while the chain survives")
	}
	if _, ok := d.Chain("sha256:chain"); !ok {
		t.Fatal("in-budget chain evicted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("reopen after budgeted GC reports damage: %+v", rep)
	}
	if _, ok := d2.Chain("sha256:chain"); !ok {
		t.Fatal("chain lost on reopen")
	}
}

// Recency order survives the journal compaction a GC performs and a full
// reopen: an under-budget GC (which rewrites the journal) must not reset
// the eviction order a later over-budget GC uses.
func TestGCBudgetOrderSurvivesCompactionAndReopen(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	for i := 0; i < 4; i++ {
		putSizedStep(t, d, fmt.Sprintf("step-%d", i), 1024)
	}
	// Under budget: keeps all four, compacts the journal.
	if _, err := d.GC(ctx, Budget{MaxBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, _ := openT(t, root)
	if _, err := d2.GC(ctx, Budget{MaxBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	for i, wantAlive := range []bool{false, false, true, true} {
		_, ok := d2.Step(fmt.Sprintf("step-%d", i))
		if ok != wantAlive {
			t.Fatalf("step-%d alive=%v after compaction+reopen, want %v", i, ok, wantAlive)
		}
	}
}
