//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package cas

import (
	"errors"
	"os"
	"os/exec"
	"testing"
	"time"
)

// Two handles in one process open the lock file separately, so flock
// treats them like two processes: a maintenance pass through one must
// fail with ErrBusy while the other keeps the store open.
func TestGCBusyWhileSecondHandleOpen(t *testing.T) {
	root := t.TempDir()
	d1, _ := openT(t, root)
	if err := d1.PutStep(ctx, "warm", []byte("layer"), 0); err != nil {
		t.Fatal(err)
	}

	d2, _, err := Open(root, WithLockWait(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	if _, err := d2.GC(ctx, Budget{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("GC with peer open: err = %v, want ErrBusy", err)
	}
	if err := d2.Reset(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("Reset with peer open: err = %v, want ErrBusy", err)
	}

	// A failed maintenance attempt must leave the handle fully usable:
	// the exclusive conversion re-acquired its shared hold.
	if err := d2.PutStep(ctx, "after-busy", []byte("more"), 0); err != nil {
		t.Fatalf("append after ErrBusy: %v", err)
	}

	// Once the peer closes, the same call succeeds.
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.GC(ctx, Budget{}); err != nil {
		t.Fatalf("GC after peer closed: %v", err)
	}
	if _, ok := d2.Step("after-busy"); ok {
		t.Fatal("untagged step survived a full-sweep GC")
	}
}

// A GC that starts before the peer closes must block on the store lock
// and then proceed, rather than interleaving with the peer's appends.
func TestGCWaitsForPeerClose(t *testing.T) {
	root := t.TempDir()
	d1, _ := openT(t, root)
	if err := d1.PutStep(ctx, "warm", []byte("layer"), 0); err != nil {
		t.Fatal(err)
	}
	d2, _, err := Open(root, WithLockWait(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	done := make(chan error, 1)
	go func() {
		_, err := d2.GC(ctx, Budget{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("GC returned (%v) while peer still held the store", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("GC after peer close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("GC never completed after peer closed")
	}
}

// TestFlockGCHelper is the child half of TestTwoProcessFlock: re-executed
// via the test binary, it opens the store named by CAS_FLOCK_ROOT with a
// short lock wait and reports through its exit code — 3 for ErrBusy,
// 0 for a successful GC, 1 for anything else.
func TestFlockGCHelper(t *testing.T) {
	root := os.Getenv("CAS_FLOCK_ROOT")
	if root == "" {
		t.Skip("helper: run by TestTwoProcessFlock only")
	}
	d, _, err := Open(root, WithLockWait(200*time.Millisecond))
	if err != nil {
		t.Logf("open: %v", err)
		os.Exit(1)
	}
	_, err = d.GC(ctx, Budget{})
	d.Close()
	switch {
	case errors.Is(err, ErrBusy):
		os.Exit(3)
	case err != nil:
		t.Logf("gc: %v", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// The cross-process acceptance case: while this process holds the store
// open (shared lock), a second process's GC fails cleanly with ErrBusy;
// after Close it succeeds.
func TestTwoProcessFlock(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "warm", []byte("layer"), 0); err != nil {
		t.Fatal(err)
	}

	run := func() int {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run=^TestFlockGCHelper$", "-test.v")
		cmd.Env = append(os.Environ(), "CAS_FLOCK_ROOT="+root)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("exec: %v\n%s", err, out)
		return -1
	}

	if code := run(); code != 3 {
		t.Fatalf("child GC with store held: exit %d, want 3 (ErrBusy)", code)
	}
	// The busy child must not have corrupted anything for us.
	if err := d.PutStep(ctx, "after-child", []byte("more"), 0); err != nil {
		t.Fatalf("append after child ErrBusy: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if code := run(); code != 0 {
		t.Fatalf("child GC with store released: exit %d, want 0", code)
	}
	// The child's full sweep dropped the untagged steps; reopening must
	// see a healthy (colder) store, not damage.
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("store damaged after child GC: %+v", rep)
	}
	if _, ok := d2.Step("warm"); ok {
		t.Fatal("untagged step survived the child's full sweep")
	}
}
