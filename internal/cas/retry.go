package cas

import (
	"context"
	"errors"
	"math/rand"
	"syscall"
	"time"
)

// Retry classification: the engine retries only failures that can succeed
// on a second try without anything else changing — ErrBusy (another
// process briefly holds the store lock exclusive), EINTR/EAGAIN from the
// backing filesystem, and errors explicitly wrapped by MarkTransient.
// Everything else is permanent by default: ENOSPC does not clear itself,
// a context cancellation must win immediately, and a digest mismatch is
// corruption (handled by quarantine + re-execution, the third retry class,
// not by re-reading the same bytes).

// transientError marks a wrapped error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so Transient reports it retryable. Returns nil
// for a nil err.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// Transient reports whether err is worth retrying.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrBusy) {
		return true
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// RetryPolicy retries transient failures with capped exponential backoff
// and full jitter.
type RetryPolicy struct {
	Attempts int           // total tries, including the first; min 1
	Base     time.Duration // first backoff ceiling; doubles per attempt
	Max      time.Duration // backoff cap
}

// DefaultRetry is the policy the engine uses around cas write-through and
// rehydration: a handful of quick tries, worst-case tens of milliseconds
// of added latency — transient lock contention survives, real outages
// degrade fast.
var DefaultRetry = RetryPolicy{Attempts: 4, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

// Do runs op, retrying while the error is Transient, up to p.Attempts
// total tries. It returns op's last error, nil on success, or the context
// error if ctx is done first.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil || !Transient(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		mRetries.Inc()
		t := time.NewTimer(p.backoff(i))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}

// backoff computes the jittered delay after try i (0-based): the ceiling
// doubles from Base per try, capped at Max, and the delay is drawn
// uniformly from [ceiling/2, ceiling].
func (p RetryPolicy) backoff(i int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << uint(i)
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if d < 2 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
