//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package cas

import "os"

// Platforms without flock(2) get a no-op lock: the store keeps its
// single-process guarantees (append-atomicity, checksummed journal,
// orphaned-handle detection) but concurrent processes are not excluded
// from GC/compaction windows. The simulated builder only targets
// flock-capable systems; this stub keeps the package compiling
// elsewhere.

func flockShared(*os.File) error { return nil }

func flockExclusiveNB(*os.File) (bool, error) { return true, nil }
