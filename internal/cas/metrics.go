package cas

import "repro/internal/obs"

// Store-level instruments on the obs default registry (see
// docs/observability.md for the inventory). All hot-path updates are
// atomic; handles are resolved once at init.
var (
	mBlobReadBytes = obs.NewCounter("ch_cas_blob_read_bytes_total",
		"Bytes read from the blob store, digest-verified reads only.")
	mBlobWriteBytes = obs.NewCounter("ch_cas_blob_write_bytes_total",
		"Bytes written to the blob store (new blobs; dedup hits excluded).")
	mBlobReadSeconds = obs.NewHistogram("ch_cas_blob_read_seconds",
		"Latency of successful blob reads.", obs.DefBuckets)
	mBlobWriteSeconds = obs.NewHistogram("ch_cas_blob_write_seconds",
		"Latency of successful new-blob writes.", obs.DefBuckets)
	mJournalAppends = obs.NewCounter("ch_cas_journal_appends_total",
		"Checksummed lines appended to the store journal.")
	mFlockWaitSeconds = obs.NewHistogram("ch_cas_flock_wait_seconds",
		"Time spent waiting for the exclusive store flock (granted or not).", obs.DefBuckets)
	mBusy = obs.NewCounter("ch_cas_busy_total",
		"Exclusive lock attempts that timed out with ErrBusy.")
	mRetries = obs.NewCounter("ch_cas_retries_total",
		"Retries of transient cas failures (attempts beyond the first).")
	mGCSweptBlobs = obs.NewCounter("ch_cas_gc_swept_blobs_total",
		"Blob files deleted by garbage collection.")
	mGCSweptBytes = obs.NewCounter("ch_cas_gc_swept_bytes_total",
		"Bytes freed by garbage collection.")
	mQuarantines = obs.NewCounter("ch_cas_quarantines_total",
		"Damaged files moved to quarantine (blobs and journal lines).")
)
