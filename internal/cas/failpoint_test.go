package cas

import (
	"context"
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestFailpointBlobWriteTornLeavesOnlyTmpLitter(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	d.SetFailpoints(NewScript(ScriptStep{Op: OpBlobWrite, Err: &TornWrite{Keep: 3}}))
	data := []byte("torn-victim-payload")
	if _, err := d.PutBlob(ctx, data); err == nil {
		t.Fatal("torn write should fail the put")
	}
	tmps, err := os.ReadDir(d.path("tmp"))
	if err != nil || len(tmps) != 1 {
		t.Fatalf("want exactly one stranded temp, got %d (err %v)", len(tmps), err)
	}
	// The script is spent: the same put now succeeds and reads back whole.
	digest, err := d.PutBlob(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Blob(ctx, digest)
	if err != nil || string(got) != string(data) {
		t.Fatalf("healed blob read: %q, %v", got, err)
	}
	d.Close()
	// Reopen: litter cleared, zero damage.
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("torn temp read as damage: %+v", rep)
	}
	if tmps, _ := os.ReadDir(d2.path("tmp")); len(tmps) != 0 {
		t.Fatalf("stranded temps not cleared: %d", len(tmps))
	}
}

func TestFailpointBlobReadDoesNotQuarantine(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	digest, err := d.PutBlob(ctx, []byte("healthy"))
	if err != nil {
		t.Fatal(err)
	}
	d.SetFailpoints(FailOps(fmt.Errorf("injected read fault"), OpBlobRead))
	if _, err := d.Blob(ctx, digest); err == nil {
		t.Fatal("injected read fault should surface")
	}
	if rep := d.Report(); rep.BlobsQuarantined != 0 {
		t.Fatalf("healthy blob quarantined on injected read fault: %+v", rep)
	}
	d.SetFailpoints(nil)
	if got, err := d.Blob(ctx, digest); err != nil || string(got) != "healthy" {
		t.Fatalf("blob unreadable after injected fault cleared: %q, %v", got, err)
	}
}

func TestFailpointJournalAppendENOSPCKeepsStoreClean(t *testing.T) {
	root := t.TempDir()
	d, _ := openT(t, root)
	if err := d.PutStep(ctx, "k1", []byte("l1"), 0); err != nil {
		t.Fatal(err)
	}
	d.SetFailpoints(FailOps(fmt.Errorf("injected: %w", syscall.ENOSPC), OpJournalAppend))
	err := d.PutStep(ctx, "k2", []byte("l2"), 0)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC through, got %v", err)
	}
	d.Close()
	d2, rep := openT(t, root)
	if rep.Quarantined() {
		t.Fatalf("failed append damaged the store: %+v", rep)
	}
	if _, ok := d2.Step("k1"); !ok {
		t.Fatal("pre-fault step lost")
	}
	if _, ok := d2.Step("k2"); ok {
		t.Fatal("failed append half-recorded")
	}
}

func TestFailpointLockBusyGC(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	d.SetFailpoints(FailOps(fmt.Errorf("injected: %w", ErrBusy), OpLock))
	if _, err := d.GC(ctx, Budget{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if err := d.Reset(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy from Reset, got %v", err)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	rate := map[Op]float64{OpBlobWrite: 0.5, OpBlobRead: 0.5}
	seq := func() []string {
		p := NewPlan(42, rate)
		var out []string
		for i := 0; i < 64; i++ {
			err := p.Fail(AllOps[i%len(AllOps)])
			if err == nil {
				out = append(out, "")
			} else {
				out = append(out, err.Error())
			}
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParseFaults(t *testing.T) {
	inj, err := ParseFaults("journal-append,blob-read:transient")
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Fail(OpJournalAppend); err == nil || Transient(err) {
		t.Fatalf("journal-append should fail permanently, got %v", err)
	}
	if err := inj.Fail(OpBlobRead); err == nil || !Transient(err) {
		t.Fatalf("blob-read:transient should fail transiently, got %v", err)
	}
	if err := inj.Fail(OpBlobWrite); err != nil {
		t.Fatalf("unlisted op should pass, got %v", err)
	}
	if _, err := ParseFaults("no-such-op"); err == nil {
		t.Fatal("unknown op should be rejected")
	}
	if _, err := ParseFaults(" , "); err == nil {
		t.Fatal("empty spec should be rejected")
	}
}

func TestRetryDo(t *testing.T) {
	fast := RetryPolicy{Attempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond}

	// Transient failures retry until success.
	calls := 0
	err := fast.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return MarkTransient(fmt.Errorf("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success on try 3, got err=%v calls=%d", err, calls)
	}

	// Permanent failures return immediately.
	calls = 0
	permanent := fmt.Errorf("injected: %w", syscall.ENOSPC)
	err = fast.Do(context.Background(), func() error { calls++; return permanent })
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 {
		t.Fatalf("ENOSPC must not retry: err=%v calls=%d", err, calls)
	}

	// ErrBusy is transient by classification and exhausts the attempts.
	calls = 0
	err = fast.Do(context.Background(), func() error { calls++; return ErrBusy })
	if !errors.Is(err, ErrBusy) || calls != 4 {
		t.Fatalf("ErrBusy should retry to exhaustion: err=%v calls=%d", err, calls)
	}

	// A done context stops before the first try.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	err = fast.Do(cctx, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("cancelled ctx should not run op: err=%v calls=%d", err, calls)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrBusy, true},
		{fmt.Errorf("wrap: %w", ErrBusy), true},
		{MarkTransient(fmt.Errorf("io hiccup")), true},
		{fmt.Errorf("wrap: %w", MarkTransient(fmt.Errorf("io hiccup"))), true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.ENOSPC, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("plain"), false},
	}
	for i, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("case %d (%v): Transient = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestContextCancelledStoreOps(t *testing.T) {
	d, _ := openT(t, t.TempDir())
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.PutBlob(cctx, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("PutBlob: %v", err)
	}
	if _, err := d.Blob(cctx, Sum([]byte("x"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("Blob: %v", err)
	}
	if err := d.PutStep(cctx, "k", nil, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("PutStep: %v", err)
	}
	if _, err := d.GC(cctx, Budget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GC: %v", err)
	}
}
