package errno

import "testing"

func TestOKSemantics(t *testing.T) {
	if !OK.Ok() || OK != 0 {
		t.Fatal("OK must be zero")
	}
	if EPERM.Ok() {
		t.Fatal("EPERM is not success")
	}
}

func TestNamesAndMessages(t *testing.T) {
	cases := []struct {
		e    Errno
		name string
		msg  string
	}{
		{EPERM, "EPERM", "Operation not permitted"},
		{EINVAL, "EINVAL", "Invalid argument"},
		{ENOENT, "ENOENT", "No such file or directory"},
		{OK, "OK", "Success"},
	}
	for _, c := range cases {
		if c.e.Name() != c.name {
			t.Errorf("%d name %q, want %q", c.e, c.e.Name(), c.name)
		}
		if c.e.Message() != c.msg {
			t.Errorf("%d message %q, want %q", c.e, c.e.Message(), c.msg)
		}
	}
}

func TestUnknownErrno(t *testing.T) {
	e := Errno(9999)
	if e.Name() != "errno(9999)" {
		t.Fatalf("name: %s", e.Name())
	}
	if e.Message() != "errno(9999)" {
		t.Fatalf("message: %s", e.Message())
	}
}

func TestErrorInterface(t *testing.T) {
	var err error = EACCES
	if err.Error() != "EACCES (Permission denied)" {
		t.Fatalf("error: %s", err.Error())
	}
}
