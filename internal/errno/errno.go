// Package errno defines the Unix error numbers the simulated kernel returns
// and the emulation layers fake. A dedicated type (rather than syscall.Errno)
// keeps the simulation OS-independent and makes "errno 0 == success" — the
// entire trick of zero-consistency root emulation — explicit in signatures.
package errno

import "fmt"

// Errno is a Unix error number. The zero value OK means success, which is
// exactly what SECCOMP_RET_ERRNO with data 0 delivers to the caller.
type Errno int

// The subset of errno values the simulation uses, with Linux x86 numbering
// (the numbers travel through seccomp return values, so they are ABI).
const (
	OK           Errno = 0
	EPERM        Errno = 1
	ENOENT       Errno = 2
	ESRCH        Errno = 3
	EINTR        Errno = 4
	EIO          Errno = 5
	ENXIO        Errno = 6
	E2BIG        Errno = 7
	ENOEXEC      Errno = 8
	EBADF        Errno = 9
	ECHILD       Errno = 10
	EAGAIN       Errno = 11
	ENOMEM       Errno = 12
	EACCES       Errno = 13
	EFAULT       Errno = 14
	EBUSY        Errno = 16
	EEXIST       Errno = 17
	EXDEV        Errno = 18
	ENODEV       Errno = 19
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	ENFILE       Errno = 23
	EMFILE       Errno = 24
	ENOTTY       Errno = 25
	EFBIG        Errno = 27
	ENOSPC       Errno = 28
	ESPIPE       Errno = 29
	EROFS        Errno = 30
	EMLINK       Errno = 31
	EPIPE        Errno = 32
	ERANGE       Errno = 34
	ENAMETOOLONG Errno = 36
	ENOSYS       Errno = 38
	ENOTEMPTY    Errno = 39
	ELOOP        Errno = 40
	ENODATA      Errno = 61
	EOVERFLOW    Errno = 75
	EOPNOTSUPP   Errno = 95
)

var names = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EIO: "EIO", ENXIO: "ENXIO", E2BIG: "E2BIG",
	ENOEXEC: "ENOEXEC", EBADF: "EBADF", ECHILD: "ECHILD", EAGAIN: "EAGAIN",
	ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT", EBUSY: "EBUSY",
	EEXIST: "EEXIST", EXDEV: "EXDEV", ENODEV: "ENODEV", ENOTDIR: "ENOTDIR",
	EISDIR: "EISDIR", EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE",
	ENOTTY: "ENOTTY", EFBIG: "EFBIG", ENOSPC: "ENOSPC", ESPIPE: "ESPIPE",
	EROFS: "EROFS", EMLINK: "EMLINK", EPIPE: "EPIPE", ERANGE: "ERANGE",
	ENAMETOOLONG: "ENAMETOOLONG", ENOSYS: "ENOSYS", ENOTEMPTY: "ENOTEMPTY",
	ELOOP: "ELOOP", ENODATA: "ENODATA", EOVERFLOW: "EOVERFLOW",
	EOPNOTSUPP: "EOPNOTSUPP",
}

var messages = map[Errno]string{
	EPERM: "Operation not permitted", ENOENT: "No such file or directory",
	EACCES: "Permission denied", EEXIST: "File exists",
	ENOTDIR: "Not a directory", EISDIR: "Is a directory",
	EINVAL: "Invalid argument", ENOSYS: "Function not implemented",
	ENOTEMPTY: "Directory not empty", ELOOP: "Too many levels of symbolic links",
	EBADF: "Bad file descriptor", EXDEV: "Invalid cross-device link",
	EROFS: "Read-only file system", ENODATA: "No data available",
	ENAMETOOLONG: "File name too long", EBUSY: "Device or resource busy",
	ERANGE: "Numerical result out of range", ESRCH: "No such process",
	ECHILD: "No child processes", ENODEV: "No such device",
	EOPNOTSUPP: "Operation not supported",
}

// Name returns the symbolic name (e.g. "EPERM"), or "errno(N)".
func (e Errno) Name() string {
	if n, ok := names[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Message returns the strerror(3)-style message used in build transcripts
// ("cpio: chown failed - Invalid argument").
func (e Errno) Message() string {
	if e == OK {
		return "Success"
	}
	if m, ok := messages[e]; ok {
		return m
	}
	return e.Name()
}

// Error makes Errno usable as a Go error. OK is still non-nil as an error
// value, so callers use Errno returns directly (e != errno.OK), never err !=
// nil, for syscall results.
func (e Errno) Error() string {
	return fmt.Sprintf("%s (%s)", e.Name(), e.Message())
}

// Ok reports success.
func (e Errno) Ok() bool { return e == OK }
