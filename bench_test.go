// Benchmark harness: one benchmark per evaluation artifact (see
// EXPERIMENTS.md for the experiment index). The paper's evaluation is
// qualitative (figures 1-2 and the §6 discussion); §6 "future work (3)" is
// performance testing, which these benches carry out on the simulated
// substrate:
//
//   - BenchmarkSyscallUnfiltered / BenchmarkSyscallIntercepted (E8): the
//     per-syscall overhead matrix across emulation modes. Expected shape:
//     none < seccomp ≪ fakeroot(hooked) < proot; seccomp's cost is flat
//     across filtered and unfiltered calls, ptrace taxes *everything*.
//
//   - BenchmarkBuildMatrix (E8/E15): end-to-end Dockerfile builds (the
//     Fig. 1a and Fig. 2 workloads) under every emulation mode.
//
//   - BenchmarkFilterGenerate / BenchmarkFilterEvaluate (E4 + DESIGN.md
//     ablation 2): program generation cost and linear-vs-tree dispatch.
//
//   - BenchmarkDataMarshal: the seccomp_data serialisation on the
//     simulated hot path.
//
//   - BenchmarkLayerCommit: the builder's snapshot+diff+pack step.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bpf"
	"repro/internal/build"
	"repro/internal/cas"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pkgmgr"
	"repro/internal/seccomp"
	"repro/internal/simos"
	"repro/internal/sysarch"
	"repro/internal/tarutil"
	"repro/internal/vfs"
)

// reportVirtual attaches the cost-model metric: modeled nanoseconds per
// operation (see simos.CostModel). This is the E8 headline number; raw
// ns/op measures only the simulator's own speed.
func reportVirtual(b *testing.B, k *simos.Kernel) {
	b.Helper()
	b.ReportMetric(float64(k.VirtualNanos())/float64(b.N), "vns/op")
}

// contProc builds a Type III container process with a file to probe.
func contProc(b *testing.B) *simos.Proc {
	b.Helper()
	k := simos.NewKernel()
	p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
	img := vfs.New()
	rc := vfs.RootContext()
	img.MkdirAll(rc, "/data", 0o755, 1000, 1000)
	img.WriteFile(rc, "/data/f", []byte("x"), 0o644, 1000, 1000)
	img.ChownAll(1000, 1000)
	if err := container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img}); err != nil {
		b.Fatal(err)
	}
	return p
}

func withSeccomp(b *testing.B, p *simos.Proc) {
	b.Helper()
	p.Prctl(simos.PrSetNoNewPrivs, 1)
	if e := p.SeccompInstall(core.MustNewFilter(core.Config{})); e != errno.OK {
		b.Fatal(e)
	}
}

// E8a: an UNFILTERED syscall (stat) under each regime — the tax every
// syscall pays.
func BenchmarkSyscallUnfiltered(b *testing.B) {
	b.Run("none", func(b *testing.B) {
		p := contProc(b)
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Stat("/data/f")
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("seccomp", func(b *testing.B) {
		p := contProc(b)
		withSeccomp(b, p)
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Stat("/data/f")
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("fakeroot-preload", func(b *testing.B) {
		p := contProc(b)
		fr := baseline.NewFakeroot()
		p.AddPreload(fr.Hook())
		c := &simos.CLib{P: p, Hooks: p.Preloads()}
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Stat("/data/f") // hooked even for reads: consistency must be maintained
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("proot-ptrace", func(b *testing.B) {
		p := contProc(b)
		baseline.NewPRoot().Attach(p)
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Stat("/data/f")
		}
		reportVirtual(b, p.Kernel())
	})
}

// E8b: an INTERCEPTED syscall (chown) under each regime.
func BenchmarkSyscallIntercepted(b *testing.B) {
	b.Run("seccomp", func(b *testing.B) {
		p := contProc(b)
		withSeccomp(b, p)
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Chown("/data/f", 74, 74)
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("fakeroot-preload", func(b *testing.B) {
		p := contProc(b)
		fr := baseline.NewFakeroot()
		p.AddPreload(fr.Hook())
		c := &simos.CLib{P: p, Hooks: p.Preloads()}
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Chown("/data/f", 74, 74)
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("proot-ptrace", func(b *testing.B) {
		p := contProc(b)
		baseline.NewPRoot().Attach(p)
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Chown("/data/f", 74, 74)
		}
		reportVirtual(b, p.Kernel())
	})
	b.Run("usernotif", func(b *testing.B) {
		p := contProc(b)
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SetNotifier(simos.NotifierFunc(func(*simos.Proc, string, []uint64) errno.Errno {
			return errno.OK
		}))
		p.SeccompInstall(core.MustNewFilter(core.Config{IDConsistency: true}))
		p.Kernel().ResetVirtualTime()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Setresuid(100, 100, 100)
		}
		reportVirtual(b, p.Kernel())
	})
}

// buildOnce runs one Dockerfile build to completion, returning the modeled
// (virtual) nanoseconds the kernel charged.
func buildOnce(b *testing.B, distro, name, text string, mode build.ForceMode) float64 {
	b.Helper()
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	img, err := world.BaseImage(distro, name)
	if err != nil {
		b.Fatal(err)
	}
	store.Put(img)
	wantErr := mode == build.ForceNone && distro == pkgmgr.DistroCentOS7
	res, err := build.Build(text, build.Options{
		Tag: "bench", Force: mode, Store: store, World: world,
	})
	if (err != nil) != wantErr {
		b.Fatalf("build err=%v wantErr=%v", err, wantErr)
	}
	return float64(res.VirtualNanos)
}

// E15: the end-to-end build matrix — the Fig. 1a and Fig. 1b/2 workloads
// under each emulation mode.
func BenchmarkBuildMatrix(b *testing.B) {
	workloads := []struct {
		key, distro, image, text string
	}{
		{"apk-sl", pkgmgr.DistroAlpine, "alpine:3.19", "FROM alpine:3.19\nRUN apk add sl\n"},
		{"yum-openssh", pkgmgr.DistroCentOS7, "centos:7", "FROM centos:7\nRUN yum install -y openssh\n"},
	}
	modes := []build.ForceMode{build.ForceNone, build.ForceSeccomp, build.ForceFakeroot, build.ForceProot}
	for _, w := range workloads {
		for _, m := range modes {
			b.Run(w.key+"/"+m.String(), func(b *testing.B) {
				b.ReportAllocs()
				var vns float64
				for i := 0; i < b.N; i++ {
					vns += buildOnce(b, w.distro, w.image, w.text, m)
				}
				b.ReportMetric(vns/float64(b.N), "vns/op")
			})
		}
	}
}

// E4: filter generation cost, per variant and dispatch strategy.
func BenchmarkFilterGenerate(b *testing.B) {
	cases := []struct {
		key string
		cfg core.Config
	}{
		{"charliecloud-linear", core.Config{}},
		{"charliecloud-tree", core.Config{Strategy: core.DispatchTree}},
		{"enroot", core.Config{Variant: core.VariantEnroot}},
		{"extended", core.Config{Variant: core.VariantExtended}},
		{"single-arch", core.Config{Arches: []*sysarch.Arch{sysarch.X8664}}},
	}
	for _, c := range cases {
		b.Run(c.key, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Generate(c.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// DESIGN.md ablation 2: linear vs tree dispatch, measured at the VM level
// on the best case (first table entry), worst case (unfiltered syscall
// walks the whole ladder), and the arch-mismatch fast path.
func BenchmarkFilterEvaluate(b *testing.B) {
	for _, strat := range []core.Strategy{core.DispatchLinear, core.DispatchTree} {
		f := core.MustNewFilter(core.Config{Strategy: strat})
		cases := []struct {
			key string
			d   seccomp.Data
		}{
			{"intercepted", seccomp.Data{NR: 92, Arch: sysarch.AuditArchX8664}}, // chown
			{"unfiltered", seccomp.Data{NR: 1, Arch: sysarch.AuditArchX8664}},   // write
			{"foreign-arch", seccomp.Data{NR: 92, Arch: 0xdeadbeef}},            // unknown
		}
		for _, c := range cases {
			c := c
			b.Run(strat.String()+"/"+c.key, func(b *testing.B) {
				var vm bpf.VM
				data := c.d.MarshalAuto()
				prog := f.Program()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					vm.Run(prog, data)
				}
			})
		}
	}
}

// seccomp_data marshalling, the simulated per-syscall serialisation cost.
func BenchmarkDataMarshal(b *testing.B) {
	d := seccomp.Data{NR: 92, Arch: sysarch.AuditArchX8664, Args: [6]uint64{1, 2, 3, 4, 5, 6}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.MarshalAuto()
	}
}

// The builder's per-instruction commit on a realistic tree: each iteration
// mutates one file, then commits the delta as a packed layer. "full" is
// the reference pipeline (whole-tree snapshot + full diff, the pre-PR
// behaviour); "incremental" is the production pipeline (dirty-subtree walk
// via vfs generation tracking), which costs O(changes).
func BenchmarkLayerCommit(b *testing.B) {
	flatten := func(b *testing.B) *vfs.FS {
		b.Helper()
		world := pkgmgr.NewWorld()
		img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
		if err != nil {
			b.Fatal(err)
		}
		fs, err := img.Flatten()
		if err != nil {
			b.Fatal(err)
		}
		return fs
	}
	b.Run("full", func(b *testing.B) {
		fs := flatten(b)
		lower, err := tarutil.Snapshot(fs)
		if err != nil {
			b.Fatal(err)
		}
		rc := vfs.RootContext()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs.WriteFile(rc, "/etc/changed", []byte(fmt.Sprintf("delta-%d", i)), 0o644, 0, 0)
			upper, err := tarutil.Snapshot(fs)
			if err != nil {
				b.Fatal(err)
			}
			diff := tarutil.Diff(lower, upper)
			if len(diff) == 0 {
				b.Fatal("empty diff")
			}
			if _, err := tarutil.Pack(diff); err != nil {
				b.Fatal(err)
			}
			lower = upper
		}
	})
	b.Run("incremental", func(b *testing.B) {
		fs := flatten(b)
		snap, err := tarutil.NewSnapshotter(fs)
		if err != nil {
			b.Fatal(err)
		}
		rc := vfs.RootContext()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs.WriteFile(rc, "/etc/changed", []byte(fmt.Sprintf("delta-%d", i)), 0o644, 0, 0)
			diff, err := snap.Advance(fs)
			if err != nil {
				b.Fatal(err)
			}
			if len(diff) == 0 {
				b.Fatal("empty diff")
			}
			if _, err := tarutil.Pack(diff); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E9 rendered as a measurement: state kept per method after the yum
// workload. Reported via custom metrics rather than ns/op.
func BenchmarkStateFootprint(b *testing.B) {
	for _, mode := range []build.ForceMode{build.ForceSeccomp, build.ForceFakeroot, build.ForceProot} {
		b.Run(mode.String(), func(b *testing.B) {
			var records float64
			for i := 0; i < b.N; i++ {
				world := pkgmgr.NewWorld()
				store := image.NewStore()
				img, _ := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
				store.Put(img)
				res, err := build.Build("FROM centos:7\nRUN yum install -y openssh\n",
					build.Options{Tag: "bench", Force: mode, Store: store, World: world})
				if err != nil {
					b.Fatal(err)
				}
				records = float64(res.FakerootRecords)
			}
			b.ReportMetric(records, "state-records")
		})
	}
}

// Build-cache ablation: warm-cache rebuilds skip the expensive RUNs.
func BenchmarkBuildCached(b *testing.B) {
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
	if err != nil {
		b.Fatal(err)
	}
	store.Put(img)
	cache := build.NewCache()
	text := "FROM centos:7\nRUN yum install -y openssh\n"
	opt := build.Options{Tag: "bench", Force: build.ForceSeccomp,
		Store: store, World: world, Cache: cache}
	if _, err := build.Build(text, opt); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := build.Build(text, opt)
		if err != nil || res.CacheHits == 0 {
			b.Fatalf("cached rebuild: hits=%d err=%v", res.CacheHits, err)
		}
	}
}

// Observability ablation (the instrumentation-overhead gate recorded in
// BENCH_obs.{txt,json}): the warm cached rebuild — the engine's hottest
// path — with the obs registry live versus obs.SetDisabled(true), the
// same fast-path no-op a deployment can flip to. docs/observability.md
// documents the acceptance ceiling: instrumented stays within 3% of
// disabled on this path.
func BenchmarkObsOverhead(b *testing.B) {
	warmRebuild := func(b *testing.B) {
		world := pkgmgr.NewWorld()
		store := image.NewStore()
		img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
		if err != nil {
			b.Fatal(err)
		}
		store.Put(img)
		cache := build.NewCache()
		text := "FROM centos:7\nRUN yum install -y openssh\n"
		opt := build.Options{Tag: "bench", Force: build.ForceSeccomp,
			Store: store, World: world, Cache: cache}
		if _, err := build.Build(text, opt); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := build.Build(text, opt)
			if err != nil || res.CacheHits == 0 {
				b.Fatalf("cached rebuild: hits=%d err=%v", res.CacheHits, err)
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		obs.SetDisabled(false)
		warmRebuild(b)
	})
	b.Run("disabled", func(b *testing.B) {
		obs.SetDisabled(true)
		defer obs.SetDisabled(false)
		warmRebuild(b)
	})
}

// The parallel build farm (PR 3 headline): N identical yum builds run
// through build.Pool, every builder with its own kernel and VFS but all
// sharing one image.Store and one instruction Cache.
//
//   - cold: fresh store and cache each iteration. Single-flight means one
//     builder pays each RUN and each flatten; the other N−1 wait and
//     replay, so wall time grows far slower than N× the single build.
//   - warm: the cache is prewarmed once; every builder replays everything.
//
// The acceptance bar recorded in BENCH_parallel.json: cold/builders=16
// completes in well under 16× cold/builders=1.
func BenchmarkBuildParallel(b *testing.B) {
	const text = "FROM centos:7\nRUN yum install -y openssh\n"
	mkJobs := func(n int, s *image.Store, w *pkgmgr.World, c *build.Cache) []build.Job {
		jobs := make([]build.Job, n)
		for i := range jobs {
			jobs[i] = build.Job{
				Dockerfile: text,
				Options: build.Options{
					Tag: fmt.Sprintf("par:%d", i), Force: build.ForceSeccomp,
					Store: s, World: w, Cache: c,
				},
			}
		}
		return jobs
	}
	freshFixtures := func(b *testing.B) (*image.Store, *pkgmgr.World) {
		b.Helper()
		world := pkgmgr.NewWorld()
		store := image.NewStore()
		img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
		if err != nil {
			b.Fatal(err)
		}
		store.Put(img)
		return store, world
	}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cold/builders=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, world := freshFixtures(b)
				cache := build.NewCache()
				b.StartTimer()
				if _, err := (&build.Pool{Workers: n}).Run(mkJobs(n, store, world, cache)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm/builders=%d", n), func(b *testing.B) {
			store, world := freshFixtures(b)
			cache := build.NewCache()
			if _, err := (&build.Pool{Workers: 1}).Run(mkJobs(1, store, world, cache)); err != nil {
				b.Fatal(err) // warm the shared cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (&build.Pool{Workers: n}).Run(mkJobs(n, store, world, cache)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Multi-stage builds (PR 4 headline): a builder-pattern Dockerfile — two
// independent build stages feeding a slim final stage via COPY --from —
// scheduled as a stage DAG on the pool.
//
//   - cold/stage-jobs=1: fresh store and cache, stages serialised.
//   - cold/stage-jobs=2: the two independent stages run concurrently; the
//     DAG schedule should beat the serial one by roughly the cheaper
//     stage's wall time.
//   - warm: the shared cache is prewarmed; every stage replays.
//
// Recorded in BENCH_multistage.{txt,json} by make bench (uploaded from CI).
func BenchmarkBuildMultiStage(b *testing.B) {
	const text = `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo solver > /opt/solver

FROM alpine:3.19 AS assets
RUN apk add sl
RUN mkdir -p /srv && echo data > /srv/assets

FROM alpine:3.19
COPY --from=build /opt/solver /app/solver
COPY --from=assets /srv/assets /app/assets
`
	freshFixtures := func(b *testing.B) (*image.Store, *pkgmgr.World) {
		b.Helper()
		world := pkgmgr.NewWorld()
		store := image.NewStore()
		for _, d := range []struct{ distro, name string }{
			{pkgmgr.DistroCentOS7, "centos:7"},
			{pkgmgr.DistroAlpine, "alpine:3.19"},
		} {
			img, err := world.BaseImage(d.distro, d.name)
			if err != nil {
				b.Fatal(err)
			}
			store.Put(img)
		}
		return store, world
	}
	opt := func(s *image.Store, w *pkgmgr.World, c *build.Cache, jobs int) build.Options {
		return build.Options{
			Tag: "multi:1", Force: build.ForceSeccomp,
			Store: s, World: w, Cache: c, StageJobs: jobs,
		}
	}
	for _, jobs := range []int{1, 2} {
		b.Run(fmt.Sprintf("cold/stage-jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, world := freshFixtures(b)
				cache := build.NewCache()
				b.StartTimer()
				res, err := build.Build(text, opt(store, world, cache, jobs))
				if err != nil || res.StagesBuilt != 3 {
					b.Fatalf("stages=%d err=%v", res.StagesBuilt, err)
				}
			}
		})
	}
	b.Run("warm", func(b *testing.B) {
		store, world := freshFixtures(b)
		cache := build.NewCache()
		if _, err := build.Build(text, opt(store, world, cache, 2)); err != nil {
			b.Fatal(err) // warm the shared cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := build.Build(text, opt(store, world, cache, 2))
			if err != nil || res.CacheHits == 0 {
				b.Fatalf("hits=%d err=%v", res.CacheHits, err)
			}
		}
	})
}

// The persistent cache (PR 5 headline): the same yum workload at three
// temperatures.
//
//   - cold-process: a fresh cas directory every iteration — the first
//     ever invocation: execute everything, persist everything.
//   - warm-from-disk: a prewarmed cas directory, but completely fresh
//     in-memory state every iteration (new world, store, instruction
//     cache) — a *second process*: every instruction replays from disk,
//     flatten chains rehydrate from persisted snapshots, zero fills.
//   - warm-in-memory: the PR 2 path — same store and cache objects
//     reused, the in-process upper bound.
//
// Each iteration spans what one ch-image invocation pays: cas open, store
// seeding, build (warm-in-memory skips the first two — that is its
// point). Recorded in BENCH_persistent.{txt,json} by make bench and
// uploaded from CI; the acceptance bar is warm-from-disk landing far
// under cold-process, approaching warm-in-memory.
func BenchmarkBuildPersistent(b *testing.B) {
	const text = "FROM centos:7\nRUN yum install -y openssh\n"
	invoke := func(b *testing.B, root string, wantExecuted int) {
		b.Helper()
		d, _, err := cas.Open(root)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		world := pkgmgr.NewWorld()
		store := image.NewStore()
		store.SetBacking(d)
		img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
		if err != nil {
			b.Fatal(err)
		}
		store.Put(img)
		res, err := build.Build(text, build.Options{
			Tag: "bench", Force: build.ForceSeccomp,
			Store: store, World: world, Cache: build.NewPersistentCache(d),
		})
		if err != nil || res.Executed != wantExecuted {
			b.Fatalf("executed=%d err=%v, want executed=%d", res.Executed, err, wantExecuted)
		}
	}
	b.Run("cold-process", func(b *testing.B) {
		base := b.TempDir()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			invoke(b, fmt.Sprintf("%s/cas-%d", base, i), 1)
		}
	})
	b.Run("warm-from-disk", func(b *testing.B) {
		root := b.TempDir() + "/cas"
		invoke(b, root, 1) // one cold invocation prewarms the directory
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			invoke(b, root, 0)
		}
	})
	b.Run("warm-in-memory", func(b *testing.B) {
		world := pkgmgr.NewWorld()
		store := image.NewStore()
		img, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
		if err != nil {
			b.Fatal(err)
		}
		store.Put(img)
		cache := build.NewCache()
		opt := build.Options{Tag: "bench", Force: build.ForceSeccomp,
			Store: store, World: world, Cache: cache}
		if _, err := build.Build(text, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := build.Build(text, opt)
			if err != nil || res.Executed != 0 {
				b.Fatalf("executed=%d err=%v", res.Executed, err)
			}
		}
	})
}

// Filter-variant ablation over a passing workload: the full Charliecloud
// filter vs the extended one (the Enroot variant cannot build this
// workload at all — its failure is asserted in the build tests).
func BenchmarkBuildFilterVariants(b *testing.B) {
	variants := []struct {
		key string
		cfg core.Config
	}{
		{"charliecloud", core.Config{}},
		{"extended", core.Config{Variant: core.VariantExtended}},
		{"tree-dispatch", core.Config{Strategy: core.DispatchTree}},
		{"single-arch", core.Config{Arches: []*sysarch.Arch{sysarch.X8664}}},
	}
	for _, v := range variants {
		b.Run(v.key, func(b *testing.B) {
			b.ReportAllocs()
			var vns float64
			for i := 0; i < b.N; i++ {
				world := pkgmgr.NewWorld()
				store := image.NewStore()
				img, _ := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
				store.Put(img)
				res, err := build.Build("FROM centos:7\nRUN yum install -y openssh\n",
					build.Options{Tag: "bench", Force: build.ForceSeccomp,
						Store: store, World: world, FilterConfig: v.cfg})
				if err != nil {
					b.Fatal(err)
				}
				vns += float64(res.VirtualNanos)
			}
			b.ReportMetric(vns/float64(b.N), "vns/op")
		})
	}
}

// Registry round trip: push + pull a built image over loopback HTTP.
func BenchmarkRegistryPushPull(b *testing.B) {
	world := pkgmgr.NewWorld()
	img, err := world.BaseImage(pkgmgr.DistroAlpine, "alpine:3.19")
	if err != nil {
		b.Fatal(err)
	}
	reg := image.NewRegistry(image.NewStore())
	url, err := reg.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := image.Push(url, img); err != nil {
			b.Fatal(err)
		}
		if _, err := image.Pull(url, "alpine:3.19"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheOpen (the --cache-verify claim): opening a large store
// with the default full-verify fsck is O(store bytes) — every blob read
// back and re-hashed — while a lazy open is O(journal lines). Over a
// synthetic 256-blob × 64 KiB store the lazy open must land far (≥5×)
// under the full one; BENCH_cas.{txt,json} record the gap run over run.
// Each open also touches one step so the benchmark can't pass with a
// handle that skipped loading the journal.
func BenchmarkCacheOpen(b *testing.B) {
	const (
		blobCount = 256
		blobSize  = 64 << 10
	)
	root := b.TempDir() + "/cas"
	d, _, err := cas.Open(root)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < blobCount; i++ {
		layer := make([]byte, blobSize)
		copy(layer, fmt.Sprintf("blob-%d", i))
		if err := d.PutStep(context.Background(), fmt.Sprintf("step-%d", i), layer, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	open := func(b *testing.B, mode cas.VerifyMode, wantChecked int) {
		b.Helper()
		d, _, err := cas.Open(root, cas.WithVerify(mode))
		if err != nil {
			b.Fatal(err)
		}
		if got := d.Report().BlobsChecked; got != wantChecked {
			b.Fatalf("BlobsChecked=%d, want %d", got, wantChecked)
		}
		if _, ok := d.Step("step-0"); !ok {
			b.Fatal("journal not loaded")
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("full-verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			open(b, cas.VerifyFull, blobCount)
		}
	})
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			open(b, cas.VerifyLazy, 0)
		}
	})
}
