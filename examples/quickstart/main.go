// Quickstart: build the paper's Figure 1a Dockerfile — an Alpine image
// installing sl(1) — in a fully unprivileged (Type III) simulated
// container, first without root emulation (it works: apk issues no
// privileged syscalls for root-owned packages), then with the seccomp
// filter (it also works, and the counters show the filter riding along).
package main

import (
	"fmt"
	"os"

	"repro/internal/build"
	"repro/internal/image"
	"repro/internal/pkgmgr"
)

const dockerfile = `FROM alpine:3.19
RUN apk add sl
`

func main() {
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	base, err := world.BaseImage(pkgmgr.DistroAlpine, "alpine:3.19")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store.Put(base)

	for _, mode := range []build.ForceMode{build.ForceNone, build.ForceSeccomp} {
		fmt.Printf("=== ch-image build -t win --force=%s .\n", mode)
		res, err := build.Build(dockerfile, build.Options{
			Tag: "win", Force: mode, Store: store, World: world, Output: os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "build failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("    syscalls=%d filtered=%d faked=%d layers=%d\n\n",
			res.Counters.Syscalls, res.Counters.Filtered, res.Counters.Faked,
			len(res.Image.Layers))
	}
	fmt.Println("Both modes succeed for Figure 1a: apk needs no privilege for")
	fmt.Println("root-owned packages, which is why the paper's rpm example is the")
	fmt.Println("interesting one — see examples/centos7-rpm.")
}
