// filter-tour walks the seccomp filter itself: it generates the §5 BPF
// program, shows per-architecture sections dispatching the same syscall
// *names* at different *numbers*, runs synthetic syscalls through the cBPF
// VM to display dispositions (including the mknod file-type inspection),
// and — on Linux — loads the very same bytes into the real kernel via a
// re-exec of cmd/seccomp-probe.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seccomp"
	"repro/internal/sysarch"
)

func main() {
	filter := core.MustNewFilter(core.Config{})
	fmt.Printf("generated multi-arch filter: %d BPF instructions\n\n", filter.Len())

	fmt.Println("the same syscall name has a different number on every architecture,")
	fmt.Println("and the filter must know them all (§4: filters see numbers, not names):")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %8s\n", "syscall",
		"x86_64", "i386", "arm", "arm64", "ppc64le", "s390x")
	for _, name := range []string{"chown", "fchownat", "setuid", "capset", "mknod", "kexec_load"} {
		row := fmt.Sprintf("%-10s", name)
		for _, arch := range sysarch.All() {
			if nr, ok := arch.Number(name); ok {
				row += fmt.Sprintf(" %8d", nr)
			} else {
				row += fmt.Sprintf(" %8s", "—")
			}
		}
		fmt.Println(row)
	}

	fmt.Println("\ndispositions (ERRNO(0) = fake success, ALLOW = execute normally):")
	show := func(arch *sysarch.Arch, name string, args ...uint64) {
		nr, ok := arch.Number(name)
		if !ok {
			return
		}
		d := seccomp.Data{NR: int32(nr), Arch: arch.AuditArch}
		copy(d.Args[:], args)
		ret := filter.EvaluateData(&d)
		fmt.Printf("  %-8s %-28s -> %s\n", arch.Name, fmt.Sprintf("%s(%v)", name, args), seccomp.ActionName(ret))
	}
	for _, arch := range []*sysarch.Arch{sysarch.X8664, sysarch.ARM64, sysarch.S390X} {
		show(arch, "chown", 0, 74, 74)
		show(arch, "setresuid", 100, 100, 100)
		show(arch, "read", 0, 0, 4096)
		// mknod's mode argument decides: char device faked, FIFO allowed.
		if arch.Has("mknod") {
			show(arch, "mknod", 0, 0x2000|0o666, 0x0103) // S_IFCHR
			show(arch, "mknod", 0, 0x1000|0o644, 0)      // S_IFIFO
		} else {
			show(arch, "mknodat", 0, 0, 0x2000|0o666, 0x0103)
			show(arch, "mknodat", 0, 0, 0x1000|0o644, 0)
		}
		show(arch, "kexec_load", 0, 0, 0, 0)
		fmt.Println()
	}

	stats := filter.Stats()
	fmt.Printf("filter statistics after the tour: %d evaluations, %d faked\n",
		stats.Evaluations, stats.Faked)

	if seccomp.NativeAvailable() {
		fmt.Println("\nthis host can install the same program natively — try:")
		fmt.Println("  go run ./cmd/seccomp-probe")
	} else {
		fmt.Println("\n(native seccomp not available on this host; the simulated kernel")
		fmt.Println("evaluates the identical program bytes)")
	}
}
