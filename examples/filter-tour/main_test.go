package main

import "testing"

// Smoke test: the example must run end to end against the in-memory
// world. A failure inside main exits the test binary non-zero, which the
// test runner reports as a failure.
func TestExampleRuns(t *testing.T) {
	main()
}
