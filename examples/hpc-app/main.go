// hpc-app is the paper's motivating workload end to end: building a
// scientific application image on (simulated) HPC infrastructure where
// everything must be fully unprivileged. A multi-instruction Dockerfile —
// base distro, package installation (the part that needs root emulation),
// source COPY, in-container "compilation", environment setup — is built
// with --force=seccomp inside a Type III container, rebuilt to show the
// instruction cache, and pushed to an in-process OCI registry for the
// deployment side to pull.
package main

import (
	"fmt"
	"os"

	"repro/internal/build"
	"repro/internal/image"
	"repro/internal/pkgmgr"
	"repro/internal/vfs"
)

const dockerfile = `FROM centos:7
# The privileged part: rpm chowns; only root emulation makes this pass.
RUN yum install -y openssh fipscheck
ARG VERSION=1.4
ENV APP_VERSION=$VERSION
WORKDIR /opt/simapp
COPY solver.c .
# "Compile" and install the application.
RUN echo compiled-$APP_VERSION > /opt/simapp/solver && chmod 755 /opt/simapp/solver
RUN mkdir -p /var/run/simapp && touch /var/run/simapp/ready
CMD ["/opt/simapp/solver"]
`

func main() {
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	base, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
	if err != nil {
		fatal(err)
	}
	store.Put(base)
	cache := build.NewCache()
	context := map[string][]byte{
		"solver.c": []byte("/* 3-D stencil solver */\nint main(void){return 0;}\n"),
	}

	fmt.Println("=== first build (cold cache)")
	res, err := build.Build(dockerfile, build.Options{
		Tag: "simapp:1.4", Force: build.ForceSeccomp, Store: store,
		World: world, Context: context, Output: os.Stdout, Cache: cache,
		BuildArgs: map[string]string{"VERSION": "1.4"},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("    layers=%d faked-syscalls=%d cache-hits=%d\n\n",
		len(res.Image.Layers), res.Counters.Faked, res.CacheHits)

	fmt.Println("=== rebuild (warm cache: every RUN/COPY replays)")
	res2, err := build.Build(dockerfile, build.Options{
		Tag: "simapp:1.4", Force: build.ForceSeccomp, Store: store,
		World: world, Context: context, Output: os.Stdout, Cache: cache,
		BuildArgs: map[string]string{"VERSION": "1.4"},
	})
	if err != nil {
		fatal(err)
	}
	hits, misses := cache.Stats()
	fmt.Printf("    cache-hits=%d (cache totals: %d hits / %d misses)\n\n",
		res2.CacheHits, hits, misses)

	// Verify the image contents.
	fs, err := res2.Image.Flatten()
	if err != nil {
		fatal(err)
	}
	rc := vfs.RootContext()
	bin, e := fs.ReadFile(rc, "/opt/simapp/solver")
	if !e.Ok() {
		fatal(fmt.Errorf("solver missing: %v", e))
	}
	fmt.Printf("image check: /opt/simapp/solver = %q, CMD = %v\n",
		string(bin[:len(bin)-1]), res2.Image.Config.Cmd)

	// Push to the site registry; the compute nodes pull from here.
	reg := image.NewRegistry(image.NewStore())
	url, err := reg.Start()
	if err != nil {
		fatal(err)
	}
	defer reg.Close()
	if err := image.Push(url, res2.Image); err != nil {
		fatal(err)
	}
	pulled, err := image.Pull(url, "simapp:1.4")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pushed and re-pulled simapp:1.4 from %s (%d layers)\n", url, len(pulled.Layers))
	fmt.Println("\nThe entire pipeline — package install, compile, push — ran with no")
	fmt.Println("privilege anywhere: a Type III container plus 216 BPF instructions.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpc-app:", err)
	os.Exit(1)
}
