// apt-sandbox reproduces the paper's §5 exception: Debian's apt drops
// privileges for downloads and *verifies* the drop, which zero-consistency
// emulation cannot satisfy. Four runs show the full story:
//
//  1. --force=none               — the drop itself fails (EINVAL).
//  2. --force=seccomp, no fix    — the drop "succeeds", verification fails.
//  3. --force=seccomp + fix      — ch-image injects -o APT::Sandbox::User=root.
//  4. --force=fakeroot           — consistent emulation passes verification
//     with no workaround (the one place consistency pays, §6).
package main

import (
	"fmt"
	"os"

	"repro/internal/build"
	"repro/internal/image"
	"repro/internal/pkgmgr"
)

const dockerfile = `FROM debian:12
RUN apt-get install -y curl
`

func main() {
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	base, err := world.BaseImage(pkgmgr.DistroDebian, "debian:12")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store.Put(base)

	runs := []struct {
		title string
		opt   build.Options
		fails bool
	}{
		{"1) --force=none", build.Options{Force: build.ForceNone}, true},
		{"2) --force=seccomp, workaround disabled", build.Options{Force: build.ForceSeccomp, DisableAptWorkaround: true}, true},
		{"3) --force=seccomp, with the §5 workaround", build.Options{Force: build.ForceSeccomp}, false},
		{"4) --force=fakeroot (consistent, no workaround needed)", build.Options{Force: build.ForceFakeroot}, false},
	}
	for _, r := range runs {
		fmt.Println("=== " + r.title)
		r.opt.Tag = "apt-demo"
		r.opt.Store = store
		r.opt.World = world
		r.opt.Output = os.Stdout
		res, err := build.Build(dockerfile, r.opt)
		switch {
		case r.fails && err == nil:
			fmt.Fprintln(os.Stderr, "unexpected success")
			os.Exit(1)
		case !r.fails && err != nil:
			fmt.Fprintf(os.Stderr, "unexpected failure: %v\n", err)
			os.Exit(1)
		case err != nil:
			fmt.Printf("(as expected: %v)\n", err)
		default:
			fmt.Printf("(ok; modified RUN instructions: %d)\n", res.ModifiedRuns)
		}
		fmt.Println()
	}
}
