// centos7-rpm reproduces the paper's central contrast: the Figure 1b
// Dockerfile (CentOS 7 + yum install openssh) fails without root emulation
// because rpm's cpio extraction chowns a file to an unmapped group, and
// the identical build succeeds under the zero-consistency seccomp filter
// (Figure 2), with zero RUN instructions modified and zero emulation
// state.
package main

import (
	"fmt"
	"os"

	"repro/internal/build"
	"repro/internal/image"
	"repro/internal/pkgmgr"
)

const dockerfile = `FROM centos:7
RUN yum install -y openssh
`

func main() {
	world := pkgmgr.NewWorld()
	store := image.NewStore()
	base, err := world.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store.Put(base)

	fmt.Println("=== Figure 1b: ch-image build -t win --force=none .")
	_, err = build.Build(dockerfile, build.Options{
		Tag: "win", Force: build.ForceNone, Store: store, World: world, Output: os.Stdout,
	})
	if err == nil {
		fmt.Fprintln(os.Stderr, "unexpected: the build should have failed")
		os.Exit(1)
	}
	fmt.Printf("(as expected: %v)\n\n", err)

	fmt.Println("=== Figure 2: ch-image build -t win --force=seccomp .")
	res, err := build.Build(dockerfile, build.Options{
		Tag: "win", Force: build.ForceSeccomp, Store: store, World: world, Output: os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "build failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nfaked syscalls: %d; consistent-emulation state records: %d (zero\n",
		res.Counters.Faked, res.FakerootRecords)
	fmt.Println("consistency means zero state). The same Dockerfile, the same package,")
	fmt.Println("the same container type — only the filter differs.")
}
