// consistency demonstrates the paper's title property. The same
// chown-then-stat sequence runs under four emulation regimes:
//
//	none      — chown fails (EINVAL: unmapped ID in a Type III container)
//	seccomp   — chown "succeeds", stat shows nothing happened (zero consistency)
//	fakeroot  — chown "succeeds", stat shows the lie (consistent, costs state)
//	proot     — same consistency via ptrace, costs trace stops
//
// The table at the end is §6's comparison in one screen: what each method
// intercepts, what it remembers, and what the process can observe.
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func newContainer() (*simos.Kernel, *simos.Proc) {
	k := simos.NewKernel()
	host := vfs.New()
	p := k.NewInitProc(simos.Mount{FS: host, Owner: k.InitNS()}, 1000, 1000)
	img := vfs.New()
	rc := vfs.RootContext()
	img.MkdirAll(rc, "/data", 0o755, 1000, 1000)
	img.WriteFile(rc, "/data/file", []byte("payload"), 0o644, 1000, 1000)
	img.ChownAll(1000, 1000)
	if err := container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return k, p
}

func main() {
	type row struct {
		mode     string
		chownErr errno.Errno
		statUID  int
		statGID  int
		state    int
		stops    uint64
	}
	var rows []row

	// none
	{
		k, p := newContainer()
		e := p.Chown("/data/file", 74, 74)
		st, _ := p.Stat("/data/file")
		rows = append(rows, row{"none", e, st.UID, st.GID, 0, k.Snapshot().PtraceStops})
	}
	// seccomp
	{
		k, p := newContainer()
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SeccompInstall(core.MustNewFilter(core.Config{}))
		e := p.Chown("/data/file", 74, 74)
		st, _ := p.Stat("/data/file")
		rows = append(rows, row{"seccomp", e, st.UID, st.GID, 0, k.Snapshot().PtraceStops})
	}
	// fakeroot (preload; use the dynamic libc view)
	{
		k, p := newContainer()
		fr := baseline.NewFakeroot()
		p.AddPreload(fr.Hook())
		c := &simos.CLib{P: p, Hooks: p.Preloads()}
		e := c.Chown("/data/file", 74, 74)
		st, _ := c.Stat("/data/file")
		rows = append(rows, row{"fakeroot", e, st.UID, st.GID, fr.Records(), k.Snapshot().PtraceStops})
	}
	// proot (ptrace)
	{
		k, p := newContainer()
		pr := baseline.NewPRoot()
		pr.Attach(p)
		e := p.Chown("/data/file", 74, 74)
		st, _ := p.Stat("/data/file")
		rows = append(rows, row{"proot", e, st.UID, st.GID, pr.Records(), k.Snapshot().PtraceStops})
	}

	fmt.Println("chown /data/file to 74:74 inside a Type III container, then stat it:")
	fmt.Printf("%-10s %-22s %-12s %-8s %s\n", "mode", "chown result", "stat shows", "state", "ptrace stops")
	for _, r := range rows {
		verdict := "SUCCESS (lie)"
		if r.chownErr != errno.OK {
			verdict = fmt.Sprintf("FAIL %s", r.chownErr.Name())
		}
		fmt.Printf("%-10s %-22s %3d:%-8d %-8d %d\n",
			r.mode, verdict, r.statUID, r.statGID, r.state, r.stops)
	}
	fmt.Println()
	fmt.Println("seccomp lies and forgets (stat still 0:0, no state); fakeroot and")
	fmt.Println("proot lie and remember (stat 74:74, one record each). The paper's")
	fmt.Println("claim: for building HPC images, forgetting is almost always fine.")
}
